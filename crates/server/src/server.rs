//! The transport layer: listeners, the fixed handler pool, and the
//! line-JSON framing.
//!
//! Everything the server *means* lives in [`crate::service`] — this module
//! only owns sockets. A bound [`TcpListener`] per enabled front (line-JSON
//! always; pgwire-lite with [`ServerConfig::pgwire_addr`]) feeds accepted
//! connections into **one** queue drained by a fixed pool of handler threads
//! sized to the shared executor budget (`UU_THREADS`) — there is no
//! per-connection spawn, and each handler runs its connection inside
//! [`Executor::run_inline`], so the statistics work it triggers runs inline
//! on the handler itself instead of borrowing pool helpers. Concurrency
//! across connections *is* the parallelism; a fleet of clients on either
//! front (or both at once) never sees more than the executor budget of
//! compute threads, which the concurrent-connection integration test pins
//! via `exec::global().metrics().peak_workers`.
//!
//! The line-JSON front here is deliberately thin: read one newline-framed
//! line (bounded by [`Service::max_frame_bytes`]; an oversized frame answers
//! a structured `frame_too_large` error), hand it to
//! [`Service::dispatch_line`], write the response line back. The pgwire
//! framing lives in [`crate::pgwire`] and routes through the same
//! [`Service::dispatch`].

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::pgwire::PgwireConn;
use crate::protocol::{ErrorCode, Response, WireError};
use crate::service::{Service, SessionCtx};
use uu_query::catalog::Catalog;
use uu_query::exec::QueryProfileCache;
use uu_stats::exec::Executor;

/// How long blocking socket operations wait before re-checking the shutdown
/// flag (accept poll, connection reads).
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// Server configuration; every field has a production-safe default.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port (read it back from
    /// [`ServerHandle::addr`]).
    pub addr: String,
    /// Optional bind address for the pgwire-lite front (`--pgwire-port`);
    /// `None` leaves it disabled.
    pub pgwire_addr: Option<String>,
    /// Connection-handler pool size; 0 means the shared executor budget
    /// (`UU_THREADS` / detected cores).
    pub workers: usize,
    /// Bound on one inbound frame (a JSON request line or a pgwire message);
    /// 0 means [`crate::service::DEFAULT_MAX_FRAME_BYTES`]. Oversized frames
    /// answer a structured `frame_too_large` error.
    pub max_frame_bytes: usize,
    /// Profile-cache entry capacity.
    pub cache_capacity: usize,
    /// Optional profile-cache byte budget (`--cache-bytes`).
    pub cache_bytes: Option<usize>,
    /// Optional profile-cache TTL (`--cache-ttl-ms`).
    pub cache_ttl: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            pgwire_addr: None,
            workers: 0,
            max_frame_bytes: 0,
            cache_capacity: uu_core::profile::DEFAULT_PROFILE_CACHE_CAPACITY,
            cache_bytes: None,
            cache_ttl: None,
        }
    }
}

impl ServerConfig {
    /// The profile cache this configuration describes.
    pub fn build_cache(&self) -> QueryProfileCache {
        let mut cache = QueryProfileCache::new(self.cache_capacity);
        if let Some(bytes) = self.cache_bytes {
            cache = cache.with_byte_budget(bytes);
        }
        if let Some(ttl) = self.cache_ttl {
            cache = cache.with_ttl(ttl);
        }
        cache
    }

    /// The effective handler-pool size: the configured value, **clamped to
    /// the shared executor budget**. Handlers compute inline, so a pool
    /// larger than `UU_THREADS` would silently oversubscribe the very budget
    /// the executor exists to enforce (and invisibly to `peak_workers`,
    /// which only counts executor-spawned work).
    pub fn effective_workers(&self) -> usize {
        let budget = uu_core::exec::global().threads();
        if self.workers == 0 {
            budget
        } else {
            self.workers.min(budget)
        }
    }
}

/// One live connection as the pool sees it: each variant carries its
/// framing state and the per-client [`SessionCtx`], so connections survive
/// a requeue mid-stream.
enum Connection {
    /// Line-JSON protocol.
    Json(JsonConn),
    /// pgwire-lite protocol.
    Pgwire(PgwireConn),
}

/// A line-JSON connection: the stream plus everything that must survive a
/// requeue — buffered bytes that arrived ahead of a newline, and the
/// per-client service context.
struct JsonConn {
    stream: TcpStream,
    /// Bytes read but not yet consumed as a full line.
    pending: Vec<u8>,
    /// Per-client dispatch state (ad-hoc estimator memo).
    ctx: SessionCtx,
}

impl JsonConn {
    fn new(stream: TcpStream) -> Self {
        JsonConn {
            stream,
            pending: Vec::new(),
            ctx: SessionCtx::new(),
        }
    }
}

/// Shared state between the accept loops, the handler pool and the owner.
/// Transport-only: the meaning of requests lives in the [`Service`].
pub struct ServerState {
    service: Arc<Service>,
    shutdown: AtomicBool,
    queue: Mutex<VecDeque<Connection>>,
    available: Condvar,
}

impl ServerState {
    /// The transport-agnostic core every front dispatches through.
    pub(crate) fn service(&self) -> &Service {
        &self.service
    }

    pub(crate) fn initiate_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake every handler blocked on the queue so it can observe the flag.
        self.available.notify_all();
    }

    pub(crate) fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// True when another connection is waiting for a handler — the signal
    /// for a handler to requeue its current (idle or just-served) connection
    /// and multiplex instead of monopolising itself.
    pub(crate) fn has_waiters(&self) -> bool {
        !self.queue.lock().expect("connection queue lock").is_empty()
    }

    fn enqueue(&self, conn: Connection) {
        let mut queue = self.queue.lock().expect("connection queue lock");
        queue.push_back(conn);
        drop(queue);
        self.available.notify_one();
    }
}

/// A running server: bound addresses plus the thread handles.
pub struct ServerHandle {
    addr: SocketAddr,
    pgwire_addr: Option<SocketAddr>,
    state: Arc<ServerState>,
    accepts: Vec<JoinHandle<()>>,
    handlers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound line-JSON address (resolves port 0 to the actual ephemeral
    /// port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bound pgwire-lite address, when that front is enabled.
    pub fn pgwire_addr(&self) -> Option<SocketAddr> {
        self.pgwire_addr
    }

    /// The service behind this server, for embedded callers that want to
    /// dispatch without a socket.
    pub fn service(&self) -> Arc<Service> {
        Arc::clone(&self.state.service)
    }

    /// Asks the server to stop (idempotent; also triggered by the `shutdown`
    /// verb) without waiting for the threads.
    pub fn request_shutdown(&self) {
        self.state.initiate_shutdown();
    }

    /// Blocks until the server exits (a client sent `shutdown`, or
    /// [`ServerHandle::request_shutdown`] ran).
    pub fn join(mut self) {
        for accept in self.accepts.drain(..) {
            let _ = accept.join();
        }
        for handler in self.handlers.drain(..) {
            let _ = handler.join();
        }
    }

    /// [`ServerHandle::request_shutdown`] + [`ServerHandle::join`].
    pub fn shutdown(self) {
        self.request_shutdown();
        self.join();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        // Don't leak an accept loop if the owner forgets to join; threads
        // observe the flag within one poll interval.
        self.state.initiate_shutdown();
    }
}

/// Binds and starts a server over an empty catalog configured from `config`.
pub fn spawn(config: ServerConfig) -> io::Result<ServerHandle> {
    let catalog = Catalog::with_cache(config.build_cache());
    spawn_with_catalog(config, catalog)
}

/// Binds and starts a server over a pre-loaded catalog (benches, embedded
/// use). The catalog's own cache policy wins — `config`'s cache fields are
/// only used by [`spawn`].
pub fn spawn_with_catalog(config: ServerConfig, catalog: Catalog) -> io::Result<ServerHandle> {
    let listener = bind(&config.addr)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let pgwire_listener = match &config.pgwire_addr {
        Some(addr) => {
            let listener = bind(addr)?;
            listener.set_nonblocking(true)?;
            Some(listener)
        }
        None => None,
    };
    let pgwire_addr = pgwire_listener
        .as_ref()
        .map(|l| l.local_addr())
        .transpose()?;

    let workers = config.effective_workers().max(1);
    let service = Arc::new(Service::new(catalog, config.max_frame_bytes));
    service.set_workers(workers);
    service.register_front("json");
    if pgwire_listener.is_some() {
        service.register_front("pgwire");
    }
    let state = Arc::new(ServerState {
        service,
        shutdown: AtomicBool::new(false),
        queue: Mutex::new(VecDeque::new()),
        available: Condvar::new(),
    });

    let mut accepts = Vec::new();
    let accept_state = Arc::clone(&state);
    accepts.push(
        std::thread::Builder::new()
            .name("uu-server-accept".to_string())
            .spawn(move || accept_loop(&accept_state, listener, Connection::json))?,
    );
    if let Some(listener) = pgwire_listener {
        let accept_state = Arc::clone(&state);
        accepts.push(
            std::thread::Builder::new()
                .name("uu-server-pgwire-accept".to_string())
                .spawn(move || accept_loop(&accept_state, listener, Connection::pgwire))?,
        );
    }

    let mut handlers = Vec::with_capacity(workers);
    for i in 0..workers {
        let handler_state = Arc::clone(&state);
        handlers.push(
            std::thread::Builder::new()
                .name(format!("uu-server-worker-{i}"))
                .spawn(move || handler_loop(&handler_state))?,
        );
    }

    Ok(ServerHandle {
        addr,
        pgwire_addr,
        state,
        accepts,
        handlers,
    })
}

impl Connection {
    fn json(stream: TcpStream) -> Connection {
        Connection::Json(JsonConn::new(stream))
    }

    fn pgwire(stream: TcpStream) -> Connection {
        Connection::Pgwire(PgwireConn::new(stream))
    }
}

fn bind(addr: &str) -> io::Result<TcpListener> {
    let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
    TcpListener::bind(&addrs[..])
}

/// Accepts connections for one front and hands them to the shared pool;
/// never spawns.
fn accept_loop(state: &ServerState, listener: TcpListener, wrap: fn(TcpStream) -> Connection) {
    while !state.is_shutting_down() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let _ = stream.set_nodelay(true);
                let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
                state.service.connection_opened();
                state.enqueue(wrap(stream));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL_INTERVAL);
            }
            Err(_) => std::thread::sleep(POLL_INTERVAL),
        }
    }
    // Unblock any handler still waiting.
    state.available.notify_all();
}

/// One resident handler: pop a connection (either front), serve it inside
/// the executor's inline scope, repeat. A connection that goes idle (or
/// finishes a request) while other connections wait is **requeued** rather
/// than monopolising the handler — the fixed pool multiplexes any number of
/// connections over the executor's thread budget, so more clients than
/// workers make progress round-robin instead of starving.
fn handler_loop(state: &ServerState) {
    loop {
        let conn = {
            let mut queue = state.queue.lock().expect("connection queue lock");
            loop {
                if let Some(conn) = queue.pop_front() {
                    break Some(conn);
                }
                if state.is_shutting_down() {
                    break None;
                }
                let (guard, _timeout) = state
                    .available
                    .wait_timeout(queue, POLL_INTERVAL)
                    .expect("connection queue lock");
                queue = guard;
            }
        };
        let Some(conn) = conn else {
            return;
        };
        // The handler *is* the worker: statistics regions triggered by this
        // connection run inline rather than borrowing executor helpers, so
        // `workers` handlers never exceed the executor's thread budget.
        if let Some(conn) = Executor::run_inline(|| serve(state, conn)) {
            state.enqueue(conn);
        }
    }
}

/// Serves one connection of either front; `Some` means "requeue me".
fn serve(state: &ServerState, conn: Connection) -> Option<Connection> {
    match conn {
        Connection::Json(conn) => serve_json(state, conn).map(Connection::Json),
        Connection::Pgwire(conn) => crate::pgwire::serve(state, conn).map(Connection::Pgwire),
    }
}

/// Outcome of one blocking line read.
enum LineRead {
    Line(String),
    TimedOut,
    Closed,
    /// The peer exceeded the frame bound without sending a newline.
    Oversized,
}

/// Reads one newline-framed request from the connection, buffering partial
/// lines across calls (and across requeues) in `conn.pending`. Timeouts
/// surface so the handler can multiplex and re-check the shutdown flag.
fn read_line(conn: &mut JsonConn, max_frame: usize) -> io::Result<LineRead> {
    loop {
        if let Some(pos) = conn.pending.iter().position(|&b| b == b'\n') {
            // The bound is on the line itself, not on read-chunk granularity:
            // a complete-but-oversized line is rejected too.
            if pos > max_frame {
                return Ok(LineRead::Oversized);
            }
            let mut line: Vec<u8> = conn.pending.drain(..=pos).collect();
            line.pop(); // the newline
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            return Ok(LineRead::Line(String::from_utf8_lossy(&line).into_owned()));
        }
        if conn.pending.len() > max_frame {
            return Ok(LineRead::Oversized);
        }
        let mut buf = [0u8; 4096];
        match conn.stream.read(&mut buf) {
            Ok(0) => return Ok(LineRead::Closed),
            Ok(n) => conn.pending.extend_from_slice(&buf[..n]),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                return Ok(LineRead::TimedOut)
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

/// Serves one line-JSON connection until the peer closes, an I/O error
/// occurs, the server shuts down, or another connection needs the handler
/// (in which case the connection comes back `Some` to be requeued). Protocol
/// errors are responses, never disconnects; the framing layer's only own
/// error is the frame bound.
fn serve_json(state: &ServerState, mut conn: JsonConn) -> Option<JsonConn> {
    let max_frame = state.service.max_frame_bytes();
    loop {
        match read_line(&mut conn, max_frame) {
            Ok(LineRead::Line(line)) => {
                if line.trim().is_empty() {
                    continue;
                }
                let response = state.service.dispatch_line(&mut conn.ctx, &line);
                let shutting_down = matches!(response, Response::Bye);
                let mut encoded = response.encode();
                encoded.push('\n');
                if conn.stream.write_all(encoded.as_bytes()).is_err()
                    || conn.stream.flush().is_err()
                {
                    return None;
                }
                if shutting_down {
                    state.initiate_shutdown();
                    return None;
                }
                // Fairness point: another connection is waiting and this one
                // has no complete request buffered — hand the handler over.
                if state.has_waiters() && !conn.pending.contains(&b'\n') {
                    return Some(conn);
                }
            }
            Ok(LineRead::TimedOut) => {
                if state.is_shutting_down() {
                    return None;
                }
                if state.has_waiters() {
                    return Some(conn);
                }
            }
            Ok(LineRead::Oversized) => {
                // Can't resynchronise on a line boundary we never saw:
                // answer with a structured error, then drop the connection.
                state.service.note_error();
                let mut encoded = Response::Error(WireError::new(
                    ErrorCode::FrameTooLarge,
                    format!("request line exceeds {max_frame} bytes"),
                ))
                .encode();
                encoded.push('\n');
                let _ = conn.stream.write_all(encoded.as_bytes());
                return None;
            }
            Ok(LineRead::Closed) | Err(_) => return None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_defaults_are_sane() {
        let config = ServerConfig::default();
        assert_eq!(config.addr, "127.0.0.1:0");
        assert_eq!(config.pgwire_addr, None);
        assert_eq!(config.max_frame_bytes, 0);
        assert!(config.effective_workers() >= 1);
        let cache = config.build_cache();
        assert_eq!(
            cache.capacity(),
            uu_core::profile::DEFAULT_PROFILE_CACHE_CAPACITY
        );
        assert_eq!(cache.byte_budget(), None);
        assert_eq!(cache.ttl(), None);
    }

    #[test]
    fn workers_clamp_to_the_executor_budget() {
        let budget = uu_core::exec::global().threads();
        let config = ServerConfig {
            workers: budget + 100,
            ..ServerConfig::default()
        };
        assert_eq!(config.effective_workers(), budget);
        let config = ServerConfig {
            workers: 1,
            ..ServerConfig::default()
        };
        assert_eq!(config.effective_workers(), 1);
    }

    #[test]
    fn config_cache_flags_reach_the_cache() {
        let config = ServerConfig {
            cache_capacity: 7,
            cache_bytes: Some(1 << 16),
            cache_ttl: Some(Duration::from_millis(250)),
            ..ServerConfig::default()
        };
        let cache = config.build_cache();
        assert_eq!(cache.capacity(), 7);
        assert_eq!(cache.byte_budget(), Some(1 << 16));
        assert_eq!(cache.ttl(), Some(Duration::from_millis(250)));
    }
}
