//! The long-running estimation server.
//!
//! One process owns a shared [`Catalog`] behind an `RwLock`: queries, warms
//! and stats take the read lock (the embedded profile cache is internally
//! synchronised, so concurrent readers serve cache hits without writer
//! involvement), `load_csv` takes the write lock. A bound [`TcpListener`]
//! feeds accepted connections into a queue drained by a **fixed pool of
//! handler threads sized to the shared executor budget** (`UU_THREADS`) —
//! there is no per-connection spawn, and each handler runs its connection
//! inside [`Executor::run_inline`], so the statistics work it triggers runs
//! inline on the handler itself instead of borrowing pool helpers.
//! Concurrency across connections *is* the parallelism; a fleet of clients
//! therefore never sees more than the executor budget of compute threads,
//! which the concurrent-connection integration test pins via
//! `exec::global().metrics().peak_workers`.
//!
//! Per connection the server keeps an [`EstimationSession`] memo: repeated
//! requests naming the same estimator set reuse the built session across
//! requests (sessions are built per estimator-set, not per request).
//!
//! Query execution fetches the selection once through
//! [`Catalog::selection_sql`] and evaluates it with
//! [`uu_query::exec::results_from_selection`] — the exact computation step
//! behind [`Catalog::execute_sql_cached`] /
//! [`Catalog::execute_sql_grouped_cached`], so answers are bit-for-bit what
//! those methods return while cache counters record exactly one lookup per
//! request. A repeated query thaws the selection's frozen
//! [`ProfileSnapshot`]s in microseconds, and the same snapshots feed the
//! per-estimator session fan-out, so the response's Δ table costs zero
//! extra statistics builds.
//!
//! [`ProfileSnapshot`]: uu_core::profile::ProfileSnapshot

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::protocol::{
    ErrorCode, GroupReply, LoadCsvRequest, QueryReply, QueryRequest, Request, Response, StatsReply,
    WireCacheStats, WireError, WireEstimate, WireExecStats, WireResult, WireValue,
    PROTOCOL_VERSION,
};
use uu_core::engine::{EstimationSession, EstimatorKind};
use uu_query::catalog::Catalog;
use uu_query::csv::load_observations;
use uu_query::exec::{CorrectionMethod, GroupResult, QueryProfileCache};
use uu_query::schema::{ColumnType, Schema};
use uu_query::sql::parse;
use uu_query::table::IntegratedTable;
use uu_query::value::Value;
use uu_stats::exec::Executor;

/// How long blocking socket operations wait before re-checking the shutdown
/// flag (accept poll, connection reads).
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// Maximum bytes of one request line. Generous (whole CSV documents travel
/// in one line) but bounded, so a peer streaming newline-free bytes cannot
/// grow server memory without limit.
const MAX_LINE_BYTES: usize = 64 << 20;

/// Server configuration; every field has a production-safe default.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port (read it back from
    /// [`ServerHandle::addr`]).
    pub addr: String,
    /// Connection-handler pool size; 0 means the shared executor budget
    /// (`UU_THREADS` / detected cores).
    pub workers: usize,
    /// Profile-cache entry capacity.
    pub cache_capacity: usize,
    /// Optional profile-cache byte budget (`--cache-bytes`).
    pub cache_bytes: Option<usize>,
    /// Optional profile-cache TTL (`--cache-ttl-ms`).
    pub cache_ttl: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 0,
            cache_capacity: uu_core::profile::DEFAULT_PROFILE_CACHE_CAPACITY,
            cache_bytes: None,
            cache_ttl: None,
        }
    }
}

impl ServerConfig {
    /// The profile cache this configuration describes.
    pub fn build_cache(&self) -> QueryProfileCache {
        let mut cache = QueryProfileCache::new(self.cache_capacity);
        if let Some(bytes) = self.cache_bytes {
            cache = cache.with_byte_budget(bytes);
        }
        if let Some(ttl) = self.cache_ttl {
            cache = cache.with_ttl(ttl);
        }
        cache
    }

    /// The effective handler-pool size: the configured value, **clamped to
    /// the shared executor budget**. Handlers compute inline, so a pool
    /// larger than `UU_THREADS` would silently oversubscribe the very budget
    /// the executor exists to enforce (and invisibly to `peak_workers`,
    /// which only counts executor-spawned work).
    pub fn effective_workers(&self) -> usize {
        let budget = uu_core::exec::global().threads();
        if self.workers == 0 {
            budget
        } else {
            self.workers.min(budget)
        }
    }
}

/// One live connection as the pool sees it: the stream plus everything that
/// must survive a requeue — buffered bytes that arrived ahead of a newline,
/// and the connection's estimation-session memo.
struct Conn {
    stream: TcpStream,
    /// Bytes read but not yet consumed as a full line.
    pending: Vec<u8>,
    /// Per-connection session memo: rebuilt only when a request names a
    /// different estimator set than the previous one.
    session: Option<(Vec<EstimatorKind>, EstimationSession)>,
}

impl Conn {
    fn new(stream: TcpStream) -> Self {
        Conn {
            stream,
            pending: Vec::new(),
            session: None,
        }
    }
}

/// Shared state between the accept loop, the handler pool and the owner.
struct ServerState {
    catalog: RwLock<Catalog>,
    shutdown: AtomicBool,
    connections: AtomicU64,
    requests: AtomicU64,
    errors: AtomicU64,
    queue: Mutex<VecDeque<Conn>>,
    available: Condvar,
    workers: usize,
    started: Instant,
}

impl ServerState {
    fn initiate_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake every handler blocked on the queue so it can observe the flag.
        self.available.notify_all();
    }

    fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// True when another connection is waiting for a handler — the signal
    /// for a handler to requeue its current (idle or just-served) connection
    /// and multiplex instead of monopolising itself.
    fn has_waiters(&self) -> bool {
        !self.queue.lock().expect("connection queue lock").is_empty()
    }

    fn enqueue(&self, conn: Conn) {
        let mut queue = self.queue.lock().expect("connection queue lock");
        queue.push_back(conn);
        drop(queue);
        self.available.notify_one();
    }
}

/// A running server: bound address plus the thread handles.
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServerState>,
    accept: Option<JoinHandle<()>>,
    handlers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves port 0 to the actual ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Asks the server to stop (idempotent; also triggered by the `shutdown`
    /// verb) without waiting for the threads.
    pub fn request_shutdown(&self) {
        self.state.initiate_shutdown();
    }

    /// Blocks until the server exits (a client sent `shutdown`, or
    /// [`ServerHandle::request_shutdown`] ran).
    pub fn join(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for handler in self.handlers.drain(..) {
            let _ = handler.join();
        }
    }

    /// [`ServerHandle::request_shutdown`] + [`ServerHandle::join`].
    pub fn shutdown(self) {
        self.request_shutdown();
        self.join();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        // Don't leak an accept loop if the owner forgets to join; threads
        // observe the flag within one poll interval.
        self.state.initiate_shutdown();
    }
}

/// Binds and starts a server over an empty catalog configured from `config`.
pub fn spawn(config: ServerConfig) -> io::Result<ServerHandle> {
    let catalog = Catalog::with_cache(config.build_cache());
    spawn_with_catalog(config, catalog)
}

/// Binds and starts a server over a pre-loaded catalog (benches, embedded
/// use). The catalog's own cache policy wins — `config`'s cache fields are
/// only used by [`spawn`].
pub fn spawn_with_catalog(config: ServerConfig, catalog: Catalog) -> io::Result<ServerHandle> {
    let listener = bind(&config.addr)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let workers = config.effective_workers().max(1);
    let state = Arc::new(ServerState {
        catalog: RwLock::new(catalog),
        shutdown: AtomicBool::new(false),
        connections: AtomicU64::new(0),
        requests: AtomicU64::new(0),
        errors: AtomicU64::new(0),
        queue: Mutex::new(VecDeque::new()),
        available: Condvar::new(),
        workers,
        started: Instant::now(),
    });

    let accept_state = Arc::clone(&state);
    let accept = std::thread::Builder::new()
        .name("uu-server-accept".to_string())
        .spawn(move || accept_loop(&accept_state, listener))?;

    let mut handlers = Vec::with_capacity(workers);
    for i in 0..workers {
        let handler_state = Arc::clone(&state);
        handlers.push(
            std::thread::Builder::new()
                .name(format!("uu-server-worker-{i}"))
                .spawn(move || handler_loop(&handler_state))?,
        );
    }

    Ok(ServerHandle {
        addr,
        state,
        accept: Some(accept),
        handlers,
    })
}

fn bind(addr: &str) -> io::Result<TcpListener> {
    let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
    TcpListener::bind(&addrs[..])
}

/// Accepts connections and hands them to the pool; never spawns.
fn accept_loop(state: &ServerState, listener: TcpListener) {
    while !state.is_shutting_down() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let _ = stream.set_nodelay(true);
                let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
                state.connections.fetch_add(1, Ordering::Relaxed);
                state.enqueue(Conn::new(stream));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL_INTERVAL);
            }
            Err(_) => std::thread::sleep(POLL_INTERVAL),
        }
    }
    // Unblock any handler still waiting.
    state.available.notify_all();
}

/// One resident handler: pop a connection, serve it inside the executor's
/// inline scope, repeat. A connection that goes idle (or finishes a request)
/// while other connections wait is **requeued** rather than monopolising the
/// handler — the fixed pool multiplexes any number of connections over the
/// executor's thread budget, so more clients than workers make progress
/// round-robin instead of starving.
fn handler_loop(state: &ServerState) {
    loop {
        let conn = {
            let mut queue = state.queue.lock().expect("connection queue lock");
            loop {
                if let Some(conn) = queue.pop_front() {
                    break Some(conn);
                }
                if state.is_shutting_down() {
                    break None;
                }
                let (guard, _timeout) = state
                    .available
                    .wait_timeout(queue, POLL_INTERVAL)
                    .expect("connection queue lock");
                queue = guard;
            }
        };
        let Some(conn) = conn else {
            return;
        };
        // The handler *is* the worker: statistics regions triggered by this
        // connection run inline rather than borrowing executor helpers, so
        // `workers` handlers never exceed the executor's thread budget.
        if let Some(conn) = Executor::run_inline(|| serve(state, conn)) {
            state.enqueue(conn);
        }
    }
}

/// Outcome of one blocking line read.
enum LineRead {
    Line(String),
    TimedOut,
    Closed,
    /// The peer exceeded [`MAX_LINE_BYTES`] without sending a newline.
    Oversized,
}

/// Reads one newline-framed request from the connection, buffering partial
/// lines across calls (and across requeues) in `conn.pending`. Timeouts
/// surface so the handler can multiplex and re-check the shutdown flag.
fn read_line(conn: &mut Conn) -> io::Result<LineRead> {
    loop {
        if let Some(pos) = conn.pending.iter().position(|&b| b == b'\n') {
            let mut line: Vec<u8> = conn.pending.drain(..=pos).collect();
            line.pop(); // the newline
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            return Ok(LineRead::Line(String::from_utf8_lossy(&line).into_owned()));
        }
        if conn.pending.len() > MAX_LINE_BYTES {
            return Ok(LineRead::Oversized);
        }
        let mut buf = [0u8; 4096];
        match conn.stream.read(&mut buf) {
            Ok(0) => return Ok(LineRead::Closed),
            Ok(n) => conn.pending.extend_from_slice(&buf[..n]),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                return Ok(LineRead::TimedOut)
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

/// Serves one connection until the peer closes, an I/O error occurs, the
/// server shuts down, or another connection needs the handler (in which case
/// the connection comes back `Some` to be requeued). Protocol errors are
/// responses, never disconnects.
fn serve(state: &ServerState, mut conn: Conn) -> Option<Conn> {
    loop {
        match read_line(&mut conn) {
            Ok(LineRead::Line(line)) => {
                if line.trim().is_empty() {
                    continue;
                }
                state.requests.fetch_add(1, Ordering::Relaxed);
                let response = process(state, &line, &mut conn.session);
                let shutting_down = matches!(response, Response::Bye);
                if matches!(response, Response::Error(_)) {
                    state.errors.fetch_add(1, Ordering::Relaxed);
                }
                let mut encoded = response.encode();
                encoded.push('\n');
                if conn.stream.write_all(encoded.as_bytes()).is_err()
                    || conn.stream.flush().is_err()
                {
                    return None;
                }
                if shutting_down {
                    state.initiate_shutdown();
                    return None;
                }
                // Fairness point: another connection is waiting and this one
                // has no complete request buffered — hand the handler over.
                if state.has_waiters() && !conn.pending.contains(&b'\n') {
                    return Some(conn);
                }
            }
            Ok(LineRead::TimedOut) => {
                if state.is_shutting_down() {
                    return None;
                }
                if state.has_waiters() {
                    return Some(conn);
                }
            }
            Ok(LineRead::Oversized) => {
                // Can't resynchronise on a line boundary we never saw:
                // answer with a structured error, then drop the connection.
                state.errors.fetch_add(1, Ordering::Relaxed);
                let mut encoded = Response::Error(WireError::new(
                    ErrorCode::MalformedRequest,
                    format!("request line exceeds {MAX_LINE_BYTES} bytes"),
                ))
                .encode();
                encoded.push('\n');
                let _ = conn.stream.write_all(encoded.as_bytes());
                return None;
            }
            Ok(LineRead::Closed) | Err(_) => return None,
        }
    }
}

/// Decodes and dispatches one request line.
fn process(
    state: &ServerState,
    line: &str,
    session: &mut Option<(Vec<EstimatorKind>, EstimationSession)>,
) -> Response {
    let request = match Request::decode(line) {
        Ok(request) => request,
        Err(e) => {
            return Response::Error(WireError::new(ErrorCode::MalformedRequest, e.to_string()))
        }
    };
    match request {
        Request::Ping => Response::Pong,
        Request::Shutdown => Response::Bye,
        Request::Stats => Response::Stats(stats(state)),
        Request::Warm { sql } => {
            let catalog = state.catalog.read().expect("catalog lock");
            match catalog.warm_sql(&sql) {
                Ok((universes, already_cached)) => Response::Warmed {
                    sql,
                    universes: universes as u64,
                    already_cached,
                },
                Err(e) => Response::Error(WireError::from_exec(&e)),
            }
        }
        Request::LoadCsv(load) => match load_csv(state, &load) {
            Ok(response) => response,
            Err(e) => Response::Error(e),
        },
        Request::Query(query) => match run_query(state, &query, session) {
            Ok(reply) => Response::Query(reply),
            Err(e) => Response::Error(e),
        },
    }
}

/// The primary correction a registry kind applies to the aggregate.
fn correction_for(kind: EstimatorKind) -> CorrectionMethod {
    match kind {
        EstimatorKind::Naive => CorrectionMethod::Naive,
        EstimatorKind::Frequency => CorrectionMethod::Frequency,
        EstimatorKind::Bucket => CorrectionMethod::Bucket,
        EstimatorKind::MonteCarlo(cfg) => CorrectionMethod::MonteCarlo(cfg),
        EstimatorKind::Policy => CorrectionMethod::Auto,
    }
}

fn run_query(
    state: &ServerState,
    request: &QueryRequest,
    session_memo: &mut Option<(Vec<EstimatorKind>, EstimationSession)>,
) -> Result<QueryReply, WireError> {
    let kinds = request
        .estimators
        .iter()
        .map(|name| EstimatorKind::by_name(name))
        .collect::<Result<Vec<_>, _>>()
        .map_err(|e| WireError::unknown_estimator(&e))?;
    let method = kinds
        .first()
        .copied()
        .map(correction_for)
        .unwrap_or(CorrectionMethod::None);
    let query = parse(&request.sql).map_err(|e| WireError::new(ErrorCode::Parse, e.to_string()))?;
    let grouped = query.group_by.is_some();

    // Reuse the connection's session when the estimator set is unchanged.
    if !kinds.is_empty()
        && !session_memo
            .as_ref()
            .is_some_and(|(memo_kinds, _)| memo_kinds == &kinds)
    {
        *session_memo = Some((kinds.clone(), EstimationSession::new(kinds.clone())));
    }
    let session =
        (!kinds.is_empty()).then(|| &session_memo.as_ref().expect("session built above").1);

    let catalog = state.catalog.read().expect("catalog lock");
    let start = Instant::now();
    let (rows, estimates, cache_hit): (Vec<GroupResult>, Vec<Vec<WireEstimate>>, bool) = if request
        .cached
    {
        // Fetch-once: exactly one cache lookup per request. The selection's
        // snapshots feed both the corrected aggregate (the same computation
        // step `execute_sql_grouped_cached` runs) and the session fan-out,
        // so cache counters honestly record one miss per cold query and one
        // hit per repeat.
        let (snapshots, hit) = catalog
            .selection_sql(&request.sql)
            .map_err(|e| WireError::from_exec(&e))?;
        let rows = uu_query::exec::results_from_selection(&query, &snapshots, method);
        let estimates = snapshots
            .iter()
            .map(|(_, snapshot)| match session {
                Some(session) => session
                    .run_profiled(&snapshot.profile())
                    .iter()
                    .map(WireEstimate::from_named)
                    .collect(),
                None => Vec::new(),
            })
            .collect();
        (rows, estimates, hit)
    } else {
        let rows = catalog
            .execute_sql_grouped(&request.sql, method)
            .map_err(|e| WireError::from_exec(&e))?;
        let table = catalog
            .get(&query.table)
            .ok_or_else(|| WireError::new(ErrorCode::UnknownTable, &query.table))?;
        let universes: Vec<(Value, uu_core::sample::SampleView)> = match query.group_by.as_deref() {
            Some(group_column) => table
                .grouped_sample_views(query.column.as_deref(), &query.predicate, group_column)
                .map_err(|e| WireError::new(ErrorCode::Table, e.to_string()))?,
            None => vec![(
                Value::Null,
                table
                    .sample_view(query.column.as_deref(), &query.predicate)
                    .map_err(|e| WireError::new(ErrorCode::Table, e.to_string()))?,
            )],
        };
        // Pair estimates with result rows **by group key**, not by position:
        // both derive from the same deterministic grouping today, but the
        // reply must not silently mis-attribute Δs if that ever changes.
        let estimates = rows
            .iter()
            .map(|row| {
                let view = universes
                    .iter()
                    .find(|(key, _)| *key == row.key)
                    .map(|(_, view)| view)
                    .expect("every result row has a matching universe");
                match session {
                    Some(session) => session
                        .run(view)
                        .iter()
                        .map(WireEstimate::from_named)
                        .collect(),
                    None => Vec::new(),
                }
            })
            .collect();
        (rows, estimates, false)
    };
    let elapsed_us = start.elapsed().as_micros() as u64;
    debug_assert_eq!(rows.len(), estimates.len());
    let groups = rows
        .into_iter()
        .zip(estimates)
        .map(|(row, est)| GroupReply {
            key: WireValue(row.key),
            result: WireResult::from_result(&row.result, est),
        })
        .collect();
    Ok(QueryReply {
        sql: request.sql.clone(),
        cache_hit,
        elapsed_us,
        grouped,
        groups,
    })
}

fn parse_column_type(ty: &str) -> Result<ColumnType, WireError> {
    match ty.to_ascii_lowercase().as_str() {
        "int" | "integer" => Ok(ColumnType::Int),
        "float" | "double" | "real" => Ok(ColumnType::Float),
        "str" | "string" | "text" => Ok(ColumnType::Str),
        other => Err(WireError::new(
            ErrorCode::MalformedRequest,
            format!("unknown column type {other:?} (expected int, float or str)"),
        )),
    }
}

/// Loads a CSV **atomically**: the whole document is ingested into a staged
/// table (a fresh one, or a clone of the existing one for `append`) and the
/// catalog is only touched once the load succeeded — a bad row half-way
/// through a document can never leave a partially-loaded table behind, so a
/// corrected retry with the same request is always safe.
fn load_csv(state: &ServerState, load: &LoadCsvRequest) -> Result<Response, WireError> {
    let mut catalog = state.catalog.write().expect("catalog lock");
    let exists = catalog.get(&load.table).is_some();
    if exists && !load.append {
        return Err(WireError::new(
            ErrorCode::DuplicateTable,
            format!(
                "table {:?} is already registered (set \"append\": true to extend it)",
                load.table
            ),
        ));
    }
    let mut staged = if exists {
        catalog.get(&load.table).expect("checked above").clone()
    } else {
        let columns = load
            .columns
            .iter()
            .map(|(name, ty)| Ok((name.clone(), parse_column_type(ty)?)))
            .collect::<Result<Vec<_>, WireError>>()?;
        IntegratedTable::new(&load.table, Schema::new(columns), &load.entity_column)
            .map_err(|e| WireError::new(ErrorCode::Table, e.to_string()))?
    };
    let observations = load_observations(&mut staged, &load.csv, &load.source_column)
        .map_err(|e| WireError::new(ErrorCode::Csv, e.to_string()))?;
    let entities = staged.len() as u64;
    if exists {
        // `get_mut` drops the table's cached profiles; the clone carries a
        // fresh instance id, so no stale entry can match it either way.
        *catalog.get_mut(&load.table).expect("checked above") = staged;
    } else {
        catalog
            .register(staged)
            .map_err(|e| WireError::new(ErrorCode::DuplicateTable, e.to_string()))?;
    }
    Ok(Response::Loaded {
        table: load.table.clone(),
        observations: observations as u64,
        entities,
    })
}

fn stats(state: &ServerState) -> StatsReply {
    let catalog = state.catalog.read().expect("catalog lock");
    let cache = catalog.cache();
    let cache_metrics = cache.metrics();
    let exec_metrics = uu_core::exec::global().metrics();
    StatsReply {
        protocol: PROTOCOL_VERSION,
        tables: catalog
            .table_names()
            .into_iter()
            .map(str::to_string)
            .collect(),
        workers: state.workers as u64,
        connections: state.connections.load(Ordering::Relaxed),
        requests: state.requests.load(Ordering::Relaxed),
        errors: state.errors.load(Ordering::Relaxed),
        uptime_ms: state.started.elapsed().as_millis() as u64,
        cache: WireCacheStats {
            hits: cache_metrics.hits,
            misses: cache_metrics.misses,
            insertions: cache_metrics.insertions,
            evictions: cache_metrics.evictions,
            invalidations: cache_metrics.invalidations,
            expirations: cache_metrics.expirations,
            len: cache_metrics.len as u64,
            bytes: cache_metrics.bytes as u64,
            capacity: cache.capacity() as u64,
            byte_budget: cache.byte_budget().map(|b| b as f64),
            ttl_ms: cache.ttl().map(|t| t.as_secs_f64() * 1e3),
        },
        exec: WireExecStats {
            threads: exec_metrics.threads as u64,
            regions: exec_metrics.regions,
            parallel_regions: exec_metrics.parallel_regions,
            tasks: exec_metrics.tasks,
            steals: exec_metrics.steals,
            peak_workers: exec_metrics.peak_workers as u64,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_defaults_are_sane() {
        let config = ServerConfig::default();
        assert_eq!(config.addr, "127.0.0.1:0");
        assert!(config.effective_workers() >= 1);
        let cache = config.build_cache();
        assert_eq!(
            cache.capacity(),
            uu_core::profile::DEFAULT_PROFILE_CACHE_CAPACITY
        );
        assert_eq!(cache.byte_budget(), None);
        assert_eq!(cache.ttl(), None);
    }

    #[test]
    fn workers_clamp_to_the_executor_budget() {
        let budget = uu_core::exec::global().threads();
        let config = ServerConfig {
            workers: budget + 100,
            ..ServerConfig::default()
        };
        assert_eq!(config.effective_workers(), budget);
        let config = ServerConfig {
            workers: 1,
            ..ServerConfig::default()
        };
        assert_eq!(config.effective_workers(), 1);
    }

    #[test]
    fn config_cache_flags_reach_the_cache() {
        let config = ServerConfig {
            cache_capacity: 7,
            cache_bytes: Some(1 << 16),
            cache_ttl: Some(Duration::from_millis(250)),
            ..ServerConfig::default()
        };
        let cache = config.build_cache();
        assert_eq!(cache.capacity(), 7);
        assert_eq!(cache.byte_budget(), Some(1 << 16));
        assert_eq!(cache.ttl(), Some(Duration::from_millis(250)));
    }

    #[test]
    fn correction_mapping_covers_every_kind() {
        for kind in EstimatorKind::all() {
            let method = correction_for(kind);
            match kind {
                EstimatorKind::Policy => assert_eq!(method, CorrectionMethod::Auto),
                EstimatorKind::Naive => assert_eq!(method, CorrectionMethod::Naive),
                EstimatorKind::Frequency => assert_eq!(method, CorrectionMethod::Frequency),
                EstimatorKind::Bucket => assert_eq!(method, CorrectionMethod::Bucket),
                EstimatorKind::MonteCarlo(cfg) => {
                    assert_eq!(method, CorrectionMethod::MonteCarlo(cfg))
                }
            }
        }
    }

    #[test]
    fn column_types_parse_with_aliases() {
        assert_eq!(parse_column_type("int").unwrap(), ColumnType::Int);
        assert_eq!(parse_column_type("Float").unwrap(), ColumnType::Float);
        assert_eq!(parse_column_type("STRING").unwrap(), ColumnType::Str);
        assert!(parse_column_type("blob").is_err());
    }
}
