//! A pgwire-lite front: the PostgreSQL wire protocol (v3), hand-rolled.
//!
//! This is the proof that the service layer is genuinely transport-agnostic:
//! a second framing — startup/auth-ok, simple query (`Q`), error responses —
//! over the **same** [`Service::dispatch`] the line-JSON front uses, so
//! `psql -c "SELECT AVG(x) FROM t WHERE ..."` talks to the estimation server
//! with zero new dependencies. Scope is deliberately "lite": no TLS (an
//! `SSLRequest` is declined with `N`, exactly like a non-SSL postgres), no
//! auth (every startup is answered `AuthenticationOk`), no extended query
//! protocol (a `Parse`/`Bind` answers a clean error and the connection
//! stays usable — prepared queries live in the richer JSON protocol).
//!
//! A simple query answers **one row per registry estimator** with the
//! columns `estimator, estimate, lower, upper, recommendation` (plus a
//! leading `group` column for `GROUP BY` queries): `estimate` is the
//! estimator's unknown-unknowns-corrected aggregate, `lower` the
//! closed-world answer, `upper` the §4 upper bound where defined, and
//! `recommendation` the §6.5 policy verdict. Each row is produced by a real
//! `Request::Query` dispatch with that estimator as the primary correction,
//! so the numbers are bit-for-bit the JSON front's answers (floats render
//! with Rust's shortest round-trip form).
//!
//! Connections are owned by the readiness-driven reactor
//! ([`crate::reactor`]) like the JSON front's: [`PgCodec`] is the
//! **resumable** framing state machine — the reactor feeds it the
//! per-connection read buffer as bytes arrive (no blocking `read_exact`),
//! and each [`PgStep`] it yields is either protocol bytes to queue
//! (handshake, declines, errors) or one complete simple query to hand to
//! the worker pool. `peak_workers ≤ UU_THREADS` holds with both fronts live
//! and any number of idle connections parked.
//!
//! The module also carries [`PgClient`], a minimal raw-socket driver for the
//! protocol (startup + simple query) used by the loopback tests, the
//! `uu-client pgwire-probe` subcommand and the CI smoke script — no `psql`
//! dependency anywhere in the build.

use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

use crate::protocol::{ErrorCode, QueryReply, QueryRequest, Request, Response, WireError};
use crate::service::{Service, SessionCtx};
use uu_core::engine::EstimatorKind;
use uu_query::value::Value;

/// Protocol version 3.0.
const PROTOCOL_V3: i32 = 196_608;
/// `SSLRequest` magic.
const SSL_REQUEST: i32 = 80_877_103;
/// `GSSENCRequest` magic.
const GSSENC_REQUEST: i32 = 80_877_104;
/// `CancelRequest` magic.
const CANCEL_REQUEST: i32 = 80_877_102;
/// Text type OID (everything is text in pgwire-lite).
const OID_TEXT: i32 = 25;

/// One text row: a cell per column, `None` = SQL NULL.
pub type PgRow = Vec<Option<String>>;

// ---------------------------------------------------------------------------
// Server side
// ---------------------------------------------------------------------------

fn be_i32(bytes: &[u8]) -> i32 {
    i32::from_be_bytes([bytes[0], bytes[1], bytes[2], bytes[3]])
}

/// One step the codec asks the reactor to take. Every yielded step consumed
/// exactly one complete inbound frame.
pub(crate) enum PgStep {
    /// Queue these protocol bytes (handshake replies, unsupported-message
    /// errors followed by `ReadyForQuery`) and keep framing.
    Reply(Vec<u8>),
    /// Like [`PgStep::Reply`] but counts a protocol error.
    ErrorReply(Vec<u8>),
    /// One complete simple query; the SQL bytes are in the scratch buffer.
    /// Hand it to the worker pool.
    Query,
    /// The peer ended the conversation cleanly (`Terminate`, or a
    /// `CancelRequest` connection): flush and close.
    Close,
    /// Unrecoverable framing state: queue these error bytes, flush, close.
    Fatal(Vec<u8>),
}

/// The **resumable** pgwire framing state machine: the reactor feeds it the
/// per-connection read buffer; it consumes at most one complete frame per
/// call and never blocks. Partial frames stay buffered — a peer dribbling
/// one byte per write assembles exactly the same frames as one sending them
/// whole.
pub(crate) struct PgCodec {
    /// Whether the startup handshake completed (startup packets have no
    /// type byte; ready-phase messages do).
    ready: bool,
}

impl PgCodec {
    pub(crate) fn new() -> Self {
        PgCodec { ready: false }
    }

    /// Tries to consume one frame from `buf`. Returns `None` when no
    /// complete frame is buffered yet. On [`PgStep::Query`] the SQL bytes
    /// are left in `scratch` (reused across frames, no per-query `String`).
    pub(crate) fn next_step(
        &mut self,
        buf: &mut Vec<u8>,
        scratch: &mut Vec<u8>,
        max_frame: usize,
    ) -> Option<PgStep> {
        if !self.ready {
            if buf.len() < 4 {
                return None;
            }
            let len = be_i32(&buf[..4]);
            if len < 8 {
                return Some(PgStep::Fatal(error_bytes(
                    "08P01",
                    "malformed message length",
                )));
            }
            let len = len as usize;
            if len > max_frame {
                return Some(PgStep::Fatal(error_bytes(
                    "54000",
                    &format!("frame of {len} bytes exceeds the {max_frame}-byte limit"),
                )));
            }
            if buf.len() < len {
                return None;
            }
            let code = be_i32(&buf[4..8]);
            buf.drain(..len);
            match code {
                SSL_REQUEST | GSSENC_REQUEST => Some(PgStep::Reply(b"N".to_vec())),
                CANCEL_REQUEST => Some(PgStep::Close),
                PROTOCOL_V3 => {
                    self.ready = true;
                    Some(PgStep::Reply(startup_ok_bytes()))
                }
                other => Some(PgStep::Fatal(error_bytes(
                    "08P01",
                    &format!("unsupported protocol code {other}"),
                ))),
            }
        } else {
            if buf.len() < 5 {
                return None;
            }
            let kind = buf[0];
            let len = be_i32(&buf[1..5]);
            if len < 4 {
                return Some(PgStep::Fatal(error_bytes(
                    "08P01",
                    "malformed message length",
                )));
            }
            let len = len as usize;
            if len > max_frame {
                return Some(PgStep::Fatal(error_bytes(
                    "54000",
                    &format!("frame of {len} bytes exceeds the {max_frame}-byte limit"),
                )));
            }
            if buf.len() < 1 + len {
                return None;
            }
            let step = match kind {
                b'Q' => {
                    let body = &buf[5..1 + len];
                    let sql = body.split(|&b| b == 0).next().unwrap_or(body);
                    scratch.clear();
                    scratch.extend_from_slice(sql);
                    PgStep::Query
                }
                b'X' => PgStep::Close,
                other => {
                    // Extended-protocol or unknown message: answer a clean
                    // error, stay in sync (messages are length framed, so
                    // the body is skipped by the drain below).
                    let mut bytes = error_bytes(
                        "0A000",
                        &format!(
                            "message {:?} is not supported by pgwire-lite (simple query only)",
                            other as char
                        ),
                    );
                    bytes.extend_from_slice(&message(b'Z', b"I"));
                    PgStep::ErrorReply(bytes)
                }
            };
            buf.drain(..1 + len);
            Some(step)
        }
    }
}

/// AuthenticationOk + parameter status + backend key + ReadyForQuery.
fn startup_ok_bytes() -> Vec<u8> {
    let mut out = Vec::new();
    // AuthenticationOk.
    out.extend_from_slice(&message(b'R', &0i32.to_be_bytes()));
    for (key, value) in [
        ("server_version", "14.0 (uu-server pgwire-lite)"),
        ("server_encoding", "UTF8"),
        ("client_encoding", "UTF8"),
    ] {
        let mut body = Vec::new();
        push_cstr(&mut body, key);
        push_cstr(&mut body, value);
        out.extend_from_slice(&message(b'S', &body));
    }
    // BackendKeyData (cancellation is not supported; a dummy key keeps
    // clients that expect the message happy).
    let mut body = Vec::new();
    body.extend_from_slice(&1i32.to_be_bytes());
    body.extend_from_slice(&0i32.to_be_bytes());
    out.extend_from_slice(&message(b'K', &body));
    out.extend_from_slice(&message(b'Z', b"I"));
    out
}

/// Answers one simple query as encoded bytes: one `Request::Query` dispatch
/// per registry estimator, all against the same cached selection, rendered
/// as one text row per (group ×) estimator. Errors become `ErrorResponse`
/// and the connection stays usable. Runs on a worker thread — no sockets.
pub(crate) fn simple_query_bytes(service: &Service, ctx: &mut SessionCtx, sql: &str) -> Vec<u8> {
    let mut out = if sql.trim().is_empty() {
        message(b'I', b"")
    } else {
        match panel(service, ctx, sql) {
            Ok((columns, rows)) => {
                let mut out = row_description(&columns);
                for row in &rows {
                    out.extend_from_slice(&data_row(row));
                }
                let mut tag = Vec::new();
                push_cstr(&mut tag, &format!("SELECT {}", rows.len()));
                out.extend_from_slice(&message(b'C', &tag));
                out
            }
            Err(e) => error_bytes(sqlstate(e.code), &e.message),
        }
    };
    out.extend_from_slice(&message(b'Z', b"I"));
    out
}

/// The full-panel answer for one SQL text: dispatches one query per registry
/// estimator through the service and lays the replies out as text rows.
fn panel(
    service: &Service,
    ctx: &mut SessionCtx,
    sql: &str,
) -> Result<(Vec<String>, Vec<PgRow>), WireError> {
    let mut replies: Vec<(&'static str, QueryReply)> = Vec::new();
    for kind in EstimatorKind::all() {
        let response = service.dispatch(
            ctx,
            Request::Query(QueryRequest {
                sql: sql.to_string(),
                estimators: vec![kind.name().to_string()],
                cached: true,
                trace: false,
            }),
        );
        match response {
            Response::Query(reply) => replies.push((kind.name(), reply)),
            Response::Error(e) => return Err(e),
            other => {
                return Err(WireError::new(
                    ErrorCode::Internal,
                    format!("unexpected dispatch response: {}", other.encode()),
                ))
            }
        }
    }
    Ok(panel_rows(&replies))
}

/// Renders per-estimator query replies as pgwire-lite text rows — shared
/// with the loopback tests so expectations are computed by the same code.
pub fn panel_rows(replies: &[(&'static str, QueryReply)]) -> (Vec<String>, Vec<PgRow>) {
    let grouped = replies.first().is_some_and(|(_, r)| r.grouped);
    let mut columns = Vec::new();
    if grouped {
        columns.push("group".to_string());
    }
    for name in ["estimator", "estimate", "lower", "upper", "recommendation"] {
        columns.push(name.to_string());
    }
    // Size by the widest reply: the per-estimator dispatches don't hold the
    // catalog lock across each other, so a concurrent mutation can change
    // the group set mid-panel — a reply with extra groups must still render
    // its rows rather than be silently truncated to the first reply's count.
    let n_groups = replies
        .iter()
        .map(|(_, r)| r.groups.len())
        .max()
        .unwrap_or(0);
    let mut rows = Vec::new();
    for gi in 0..n_groups {
        for (name, reply) in replies {
            let Some(group) = reply.groups.get(gi) else {
                continue;
            };
            let r = &group.result;
            let mut row = Vec::new();
            if grouped {
                row.push(render_group_key(&group.key.0));
            }
            row.push(Some((*name).to_string()));
            row.push(render_cell(r.corrected));
            row.push(Some(render_f64(r.observed)));
            row.push(render_cell(r.upper_bound));
            row.push(Some(r.recommendation.clone()));
            rows.push(row);
        }
    }
    (columns, rows)
}

/// A float cell, shortest round-trip form (`NaN` / `inf` / `-inf` for
/// non-finite values — the same spellings the JSON protocol uses).
pub fn render_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-inf".to_string()
    } else {
        format!("{v}")
    }
}

/// An optional float cell (`None` ⇒ SQL NULL).
pub fn render_cell(v: Option<f64>) -> Option<String> {
    v.map(render_f64)
}

/// A group-key cell (`Null` ⇒ SQL NULL; strings unquoted).
pub fn render_group_key(v: &Value) -> Option<String> {
    match v {
        Value::Null => None,
        Value::Int(i) => Some(i.to_string()),
        Value::Float(f) => Some(render_f64(*f)),
        Value::Str(s) => Some(s.clone()),
    }
}

/// The SQLSTATE a wire error code maps to.
fn sqlstate(code: ErrorCode) -> &'static str {
    match code {
        ErrorCode::Parse => "42601",
        ErrorCode::UnknownTable => "42P01",
        ErrorCode::Table => "42703",
        ErrorCode::UnknownEstimator => "22023",
        ErrorCode::FrameTooLarge => "54000",
        _ => "XX000",
    }
}

// ---------------------------------------------------------------------------
// Message building
// ---------------------------------------------------------------------------

/// Frames one message: type byte + BE length (including itself) + body.
fn message(kind: u8, body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(5 + body.len());
    out.push(kind);
    out.extend_from_slice(&((body.len() as i32 + 4).to_be_bytes()));
    out.extend_from_slice(body);
    out
}

fn push_cstr(buf: &mut Vec<u8>, s: &str) {
    buf.extend_from_slice(s.as_bytes());
    buf.push(0);
}

fn row_description(columns: &[String]) -> Vec<u8> {
    let mut body = Vec::new();
    body.extend_from_slice(&(columns.len() as i16).to_be_bytes());
    for column in columns {
        push_cstr(&mut body, column);
        body.extend_from_slice(&0i32.to_be_bytes()); // table OID
        body.extend_from_slice(&0i16.to_be_bytes()); // attribute number
        body.extend_from_slice(&OID_TEXT.to_be_bytes()); // type OID
        body.extend_from_slice(&(-1i16).to_be_bytes()); // type size (varlena)
        body.extend_from_slice(&(-1i32).to_be_bytes()); // type modifier
        body.extend_from_slice(&0i16.to_be_bytes()); // format: text
    }
    message(b'T', &body)
}

fn data_row(cells: &[Option<String>]) -> Vec<u8> {
    let mut body = Vec::new();
    body.extend_from_slice(&(cells.len() as i16).to_be_bytes());
    for cell in cells {
        match cell {
            None => body.extend_from_slice(&(-1i32).to_be_bytes()),
            Some(text) => {
                body.extend_from_slice(&(text.len() as i32).to_be_bytes());
                body.extend_from_slice(text.as_bytes());
            }
        }
    }
    message(b'D', &body)
}

/// An `ErrorResponse` message with severity/SQLSTATE/message fields.
fn error_bytes(sqlstate: &str, message_text: &str) -> Vec<u8> {
    let mut body = Vec::new();
    body.push(b'S');
    push_cstr(&mut body, "ERROR");
    body.push(b'V');
    push_cstr(&mut body, "ERROR");
    body.push(b'C');
    push_cstr(&mut body, sqlstate);
    body.push(b'M');
    push_cstr(&mut body, message_text);
    body.push(0);
    message(b'E', &body)
}

// ---------------------------------------------------------------------------
// Raw-socket driver (tests, uu-client pgwire-probe, CI smoke)
// ---------------------------------------------------------------------------

/// A simple-query result as text cells (`None` = SQL NULL).
#[derive(Debug, Clone, PartialEq)]
pub struct PgRows {
    /// Column names from the row description.
    pub columns: Vec<String>,
    /// One entry per data row.
    pub rows: Vec<PgRow>,
    /// The command-completion tag (e.g. `SELECT 5`), empty for an empty
    /// query.
    pub command_tag: String,
}

/// A server error surfaced on an otherwise-healthy connection.
#[derive(Debug, Clone, PartialEq)]
pub struct PgError {
    /// The SQLSTATE field.
    pub sqlstate: String,
    /// The human-readable message field.
    pub message: String,
}

impl std::fmt::Display for PgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pgwire error [{}]: {}", self.sqlstate, self.message)
    }
}

/// A minimal blocking pgwire client: SSL decline + startup + simple query.
/// This is the raw-socket driver the loopback tests and the CI smoke script
/// use instead of a `psql` dependency.
pub struct PgClient {
    stream: TcpStream,
}

impl PgClient {
    /// Connects and completes the startup handshake (sends an `SSLRequest`
    /// first, like `psql`, and expects the `N` decline).
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<PgClient, String> {
        let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
        stream.set_nodelay(true).ok();
        // SSLRequest → expect 'N'.
        let mut ssl = Vec::new();
        ssl.extend_from_slice(&8i32.to_be_bytes());
        ssl.extend_from_slice(&SSL_REQUEST.to_be_bytes());
        stream
            .write_all(&ssl)
            .map_err(|e| format!("ssl request: {e}"))?;
        let mut n = [0u8; 1];
        stream
            .read_exact(&mut n)
            .map_err(|e| format!("ssl response: {e}"))?;
        if n[0] != b'N' {
            return Err(format!("expected SSL decline 'N', got {:?}", n[0] as char));
        }
        // StartupMessage with user/database parameters.
        let mut params = Vec::new();
        params.extend_from_slice(&PROTOCOL_V3.to_be_bytes());
        push_cstr(&mut params, "user");
        push_cstr(&mut params, "uu");
        push_cstr(&mut params, "database");
        push_cstr(&mut params, "uu");
        params.push(0);
        let mut startup = Vec::new();
        startup.extend_from_slice(&((params.len() as i32 + 4).to_be_bytes()));
        startup.extend_from_slice(&params);
        stream
            .write_all(&startup)
            .map_err(|e| format!("startup: {e}"))?;
        let mut client = PgClient { stream };
        // Drain AuthenticationOk / ParameterStatus / BackendKeyData until
        // ReadyForQuery.
        loop {
            let (kind, body) = client.read_message()?;
            match kind {
                b'R' => {
                    if body.len() < 4 || be_i32(&body[..4]) != 0 {
                        return Err("server demanded authentication".to_string());
                    }
                }
                b'S' | b'K' | b'N' => {}
                b'Z' => return Ok(client),
                b'E' => return Err(parse_error(&body).to_string()),
                other => return Err(format!("unexpected startup message {:?}", other as char)),
            }
        }
    }

    /// Runs one simple query. A server `ErrorResponse` returns `Err` but the
    /// connection stays usable for the next call.
    pub fn simple_query(&mut self, sql: &str) -> Result<PgRows, PgError> {
        let mut body = Vec::new();
        push_cstr(&mut body, sql);
        let io_err = |e: io::Error| PgError {
            sqlstate: "08000".to_string(),
            message: e.to_string(),
        };
        self.stream
            .write_all(&message(b'Q', &body))
            .map_err(io_err)?;
        self.stream.flush().map_err(io_err)?;
        let mut result = PgRows {
            columns: Vec::new(),
            rows: Vec::new(),
            command_tag: String::new(),
        };
        let mut error: Option<PgError> = None;
        loop {
            let (kind, body) = self.read_message().map_err(|e| PgError {
                sqlstate: "08000".to_string(),
                message: e,
            })?;
            let malformed = |what: &str| PgError {
                sqlstate: "08P01".to_string(),
                message: format!("malformed {what} message from server"),
            };
            match kind {
                b'T' => {
                    result.columns =
                        parse_row_description(&body).ok_or_else(|| malformed("RowDescription"))?
                }
                b'D' => result
                    .rows
                    .push(parse_data_row(&body).ok_or_else(|| malformed("DataRow"))?),
                b'C' => {
                    result.command_tag = body
                        .split(|&b| b == 0)
                        .next()
                        .map(|s| String::from_utf8_lossy(s).into_owned())
                        .unwrap_or_default()
                }
                b'I' => {} // EmptyQueryResponse
                b'E' => error = Some(parse_error(&body)),
                b'N' | b'S' => {}
                b'Z' => {
                    return match error {
                        Some(e) => Err(e),
                        None => Ok(result),
                    }
                }
                other => {
                    return Err(PgError {
                        sqlstate: "08P01".to_string(),
                        message: format!("unexpected message {:?}", other as char),
                    })
                }
            }
        }
    }

    fn read_message(&mut self) -> Result<(u8, Vec<u8>), String> {
        let mut header = [0u8; 5];
        self.stream
            .read_exact(&mut header)
            .map_err(|e| format!("read header: {e}"))?;
        let len = be_i32(&header[1..5]);
        if len < 4 {
            return Err(format!("malformed message length {len}"));
        }
        let mut body = vec![0u8; len as usize - 4];
        self.stream
            .read_exact(&mut body)
            .map_err(|e| format!("read body: {e}"))?;
        Ok((header[0], body))
    }
}

/// Bounds-checked parse of a `RowDescription` body; `None` on truncation —
/// the driver may be pointed at an arbitrary server, so a malformed frame
/// must surface as an error, never a panic.
fn parse_row_description(body: &[u8]) -> Option<Vec<String>> {
    let count = i16::from_be_bytes([*body.first()?, *body.get(1)?]) as usize;
    let mut columns = Vec::with_capacity(count);
    let mut pos = 2;
    for _ in 0..count {
        let name_len = body.get(pos..)?.iter().position(|&b| b == 0)?;
        columns.push(String::from_utf8_lossy(&body[pos..pos + name_len]).into_owned());
        pos += name_len + 1 + 18; // name NUL + 6 fixed fields (4+2+4+2+4+2 bytes)
        if pos > body.len() {
            return None;
        }
    }
    Some(columns)
}

/// Bounds-checked parse of a `DataRow` body; `None` on truncation.
fn parse_data_row(body: &[u8]) -> Option<PgRow> {
    let count = i16::from_be_bytes([*body.first()?, *body.get(1)?]) as usize;
    let mut cells = Vec::with_capacity(count);
    let mut pos = 2;
    for _ in 0..count {
        let len = be_i32(body.get(pos..pos + 4)?);
        pos += 4;
        if len < 0 {
            cells.push(None);
        } else {
            let len = len as usize;
            cells.push(Some(
                String::from_utf8_lossy(body.get(pos..pos + len)?).into_owned(),
            ));
            pos += len;
        }
    }
    Some(cells)
}

fn parse_error(body: &[u8]) -> PgError {
    let mut error = PgError {
        sqlstate: String::new(),
        message: String::new(),
    };
    let mut pos = 0;
    while pos < body.len() && body[pos] != 0 {
        let field = body[pos];
        pos += 1;
        let end = body[pos..]
            .iter()
            .position(|&b| b == 0)
            .map(|i| pos + i)
            .unwrap_or(body.len());
        let value = String::from_utf8_lossy(&body[pos..end]).into_owned();
        match field {
            b'C' => error.sqlstate = value,
            b'M' => error.message = value,
            _ => {}
        }
        pos = end + 1;
    }
    error
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{GroupReply, WireDiagnostics, WireResult, WireValue};

    fn result(corrected: Option<f64>) -> WireResult {
        WireResult {
            query: "SELECT SUM(v) FROM t".into(),
            observed: 13_300.0,
            corrected,
            method: "bucket".into(),
            n_hat: None,
            upper_bound: Some(20_000.5),
            extreme: None,
            diagnostics: WireDiagnostics {
                coverage: None,
                contributing_sources: 5,
                max_source_share: None,
                source_gini: None,
            },
            recommendation: "bucket".into(),
            estimates: Vec::new(),
        }
    }

    #[test]
    fn panel_rows_lay_out_one_row_per_estimator() {
        let reply = QueryReply {
            sql: "SELECT SUM(v) FROM t".into(),
            cache_hit: true,
            elapsed_us: 1,
            grouped: false,
            groups: vec![GroupReply {
                key: WireValue(Value::Null),
                result: result(Some(13_950.000000000002)),
            }],
            trace: None,
        };
        let (columns, rows) = panel_rows(&[("bucket", reply.clone()), ("naive", reply)]);
        assert_eq!(
            columns,
            vec!["estimator", "estimate", "lower", "upper", "recommendation"]
        );
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0][0].as_deref(), Some("bucket"));
        assert_eq!(rows[0][1].as_deref(), Some("13950.000000000002"));
        assert_eq!(rows[0][2].as_deref(), Some("13300"));
        assert_eq!(rows[0][3].as_deref(), Some("20000.5"));
        assert_eq!(rows[1][0].as_deref(), Some("naive"));
    }

    #[test]
    fn grouped_panels_lead_with_the_group_column() {
        let reply = QueryReply {
            sql: "SELECT SUM(v) FROM t GROUP BY g".into(),
            cache_hit: true,
            elapsed_us: 1,
            grouped: true,
            groups: vec![
                GroupReply {
                    key: WireValue(Value::Str("CA".into())),
                    result: result(None),
                },
                GroupReply {
                    key: WireValue(Value::Int(7)),
                    result: result(Some(1.0)),
                },
            ],
            trace: None,
        };
        let (columns, rows) = panel_rows(&[("bucket", reply)]);
        assert_eq!(columns[0], "group");
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0][0].as_deref(), Some("CA"));
        assert_eq!(rows[0][2], None, "withheld estimate renders as NULL");
        assert_eq!(rows[1][0].as_deref(), Some("7"));
    }

    #[test]
    fn float_cells_render_non_finite_markers() {
        assert_eq!(render_f64(f64::NAN), "NaN");
        assert_eq!(render_f64(f64::INFINITY), "inf");
        assert_eq!(render_f64(f64::NEG_INFINITY), "-inf");
        assert_eq!(render_f64(0.1), "0.1");
        assert_eq!(render_cell(None), None);
    }

    #[test]
    fn row_description_and_data_row_round_trip_through_the_driver_parsers() {
        let columns = vec!["estimator".to_string(), "estimate".to_string()];
        let described = row_description(&columns);
        assert_eq!(described[0], b'T');
        assert_eq!(parse_row_description(&described[5..]), Some(columns));
        let cells = vec![Some("bucket".to_string()), None];
        let row = data_row(&cells);
        assert_eq!(row[0], b'D');
        assert_eq!(parse_data_row(&row[5..]), Some(cells));
    }

    #[test]
    fn truncated_frames_parse_to_none_not_panics() {
        // Every truncation point of a well-formed body must fail cleanly —
        // the driver can be pointed at an arbitrary server.
        let described = row_description(&["estimator".to_string()]);
        let body = &described[5..];
        for cut in 0..body.len() {
            assert_eq!(parse_row_description(&body[..cut]), None, "cut={cut}");
        }
        let row = data_row(&[Some("bucket".to_string()), None]);
        let body = &row[5..];
        for cut in 0..body.len() {
            assert_eq!(parse_data_row(&body[..cut]), None, "cut={cut}");
        }
        // A declared cell length beyond the body is rejected.
        let mut lying = vec![0, 1]; // one cell
        lying.extend_from_slice(&100i32.to_be_bytes()); // claims 100 bytes
        lying.extend_from_slice(b"short");
        assert_eq!(parse_data_row(&lying), None);
    }

    #[test]
    fn error_fields_round_trip_through_the_driver_parser() {
        let mut body = Vec::new();
        body.push(b'S');
        push_cstr(&mut body, "ERROR");
        body.push(b'C');
        push_cstr(&mut body, "42P01");
        body.push(b'M');
        push_cstr(&mut body, "unknown table \"t\"");
        body.push(0);
        let parsed = parse_error(&body);
        assert_eq!(parsed.sqlstate, "42P01");
        assert_eq!(parsed.message, "unknown table \"t\"");
    }

    fn startup_packet() -> Vec<u8> {
        let mut params = Vec::new();
        params.extend_from_slice(&PROTOCOL_V3.to_be_bytes());
        push_cstr(&mut params, "user");
        push_cstr(&mut params, "uu");
        params.push(0);
        let mut packet = Vec::new();
        packet.extend_from_slice(&((params.len() as i32 + 4).to_be_bytes()));
        packet.extend_from_slice(&params);
        packet
    }

    #[test]
    fn codec_assembles_the_handshake_and_query_byte_at_a_time() {
        // The same wire bytes, dribbled one byte per feed, must yield
        // exactly the same steps as arriving whole: this is the resumable
        // contract the reactor depends on.
        let mut wire = Vec::new();
        let mut ssl = Vec::new();
        ssl.extend_from_slice(&8i32.to_be_bytes());
        ssl.extend_from_slice(&SSL_REQUEST.to_be_bytes());
        wire.extend_from_slice(&ssl);
        wire.extend_from_slice(&startup_packet());
        let mut q = Vec::new();
        push_cstr(&mut q, "SELECT SUM(v) FROM t");
        wire.extend_from_slice(&message(b'Q', &q));
        wire.extend_from_slice(&message(b'X', b""));

        let mut codec = PgCodec::new();
        let mut buf = Vec::new();
        let mut scratch = Vec::new();
        let mut steps = Vec::new();
        for &b in &wire {
            buf.push(b);
            while let Some(step) = codec.next_step(&mut buf, &mut scratch, 16 << 20) {
                steps.push(step);
            }
        }
        assert!(buf.is_empty(), "every frame fully consumed");
        assert_eq!(steps.len(), 4);
        assert!(matches!(&steps[0], PgStep::Reply(b) if b == b"N"));
        assert!(matches!(&steps[1], PgStep::Reply(b) if b == &startup_ok_bytes()));
        assert!(matches!(steps[2], PgStep::Query));
        assert_eq!(scratch, b"SELECT SUM(v) FROM t");
        assert!(matches!(steps[3], PgStep::Close));
    }

    #[test]
    fn codec_bounds_apply_to_the_declared_frame_length() {
        // A header declaring a frame beyond the bound is fatal immediately —
        // no buffering of the oversized body.
        let mut codec = PgCodec::new();
        let mut buf = Vec::new();
        let mut scratch = Vec::new();
        buf.extend_from_slice(&(1_000_000i32).to_be_bytes());
        match codec.next_step(&mut buf, &mut scratch, 4096) {
            Some(PgStep::Fatal(bytes)) => {
                let e = parse_error(&bytes[5..]);
                assert_eq!(e.sqlstate, "54000");
                assert!(e.message.contains("4096"));
            }
            _ => panic!("expected a fatal step"),
        }
        // Same in the ready phase.
        let mut codec = PgCodec { ready: true };
        let mut buf = vec![b'Q'];
        buf.extend_from_slice(&(1_000_000i32).to_be_bytes());
        assert!(matches!(
            codec.next_step(&mut buf, &mut scratch, 4096),
            Some(PgStep::Fatal(_))
        ));
    }

    #[test]
    fn codec_rejects_malformed_lengths_and_unknown_messages() {
        let mut scratch = Vec::new();
        // Startup length below the minimum is malformed.
        let mut codec = PgCodec::new();
        let mut buf = 4i32.to_be_bytes().to_vec();
        match codec.next_step(&mut buf, &mut scratch, 4096) {
            Some(PgStep::Fatal(bytes)) => {
                assert_eq!(parse_error(&bytes[5..]).sqlstate, "08P01");
            }
            _ => panic!("expected a fatal step"),
        }
        // An unsupported ready-phase message answers an error plus
        // ReadyForQuery and the connection survives.
        let mut codec = PgCodec { ready: true };
        let mut buf = message(b'P', b"\0\0");
        buf.extend_from_slice(&message(b'X', b""));
        match codec.next_step(&mut buf, &mut scratch, 4096) {
            Some(PgStep::ErrorReply(bytes)) => {
                assert_eq!(parse_error(&bytes[5..]).sqlstate, "0A000");
                assert_eq!(&bytes[bytes.len() - 6..], &message(b'Z', b"I")[..]);
            }
            _ => panic!("expected an error-reply step"),
        }
        assert!(matches!(
            codec.next_step(&mut buf, &mut scratch, 4096),
            Some(PgStep::Close)
        ));
    }
}
