//! The transport-agnostic service layer.
//!
//! [`Service`] is the whole server with the sockets cut away: it owns the
//! shared [`Catalog`] behind its `RwLock`, the server-wide limits and
//! counters, and the registry of **named server-side sessions** (each with a
//! pinned estimator selection and its prepared queries).
//! [`Service::dispatch`] is a total function `(&Service, &mut SessionCtx,
//! Request) -> Response` — every front (the line-JSON framing in
//! [`crate::server`], the pgwire-lite framing in [`crate::pgwire`], an
//! embedded caller, a test) routes through this one function, so answers
//! cannot depend on which wire they arrived on. No socket, listener or
//! framing type appears in this module; a grep test pins that.
//!
//! # Named sessions and prepared queries
//!
//! A `session_open` creates a server-side session addressable by name from
//! any connection: the estimator selection is resolved once
//! (`EstimatorKind::by_name`) and the [`EstimationSession`] is built once.
//! `prepare` parses a SQL text once and eagerly captures its selection
//! snapshots; `execute_prepared` then skips the parser entirely and reuses
//! the statement's **frozen** [`SelectionSnapshots`] for as long as the
//! table's `(instance, version)` is unchanged — not even a profile-cache
//! lookup happens on that path (counted as `frozen_hits` in `stats`). When
//! the table has moved, the statement re-fetches through the catalog's
//! profile cache ([`Catalog::selection_query`]) and re-freezes. Either way
//! the computation step is [`uu_query::exec::results_from_selection`] — the
//! exact step behind [`Catalog::execute_sql_cached`] — so a prepared
//! execute, an ad-hoc `query`, and a direct catalog call answer bit-for-bit
//! identically.

use std::collections::BTreeMap;
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use crate::json::Json;
use crate::protocol::{
    ErrorCode, GroupReply, LoadCsvRequest, MetricsReply, QueryReply, QueryRequest, Request,
    Response, ServerInfoReply, StatsReply, WireCacheStats, WireConnStats, WireError, WireEstimate,
    WireExecStats, WireIncrementalStats, WireProjectionStats, WireResult, WireSessionStats,
    WireSpan, WireStageMetrics, WireStorageStats, WireValue, PROTOCOL_VERSION,
};
use uu_core::engine::{EstimationSession, EstimatorKind};
use uu_core::obs;
use uu_core::obs::{Stage, Verb};
use uu_query::catalog::Catalog;
use uu_query::csv::parse_observations;
use uu_query::exec::{CorrectionMethod, GroupResult, SelectionSnapshots};
use uu_query::query::AggregateQuery;
use uu_query::schema::{ColumnType, Schema};
use uu_query::sql::parse;
use uu_query::table::IntegratedTable;
use uu_query::value::Value;
use uu_store::Store;

/// Default bound on one inbound frame (a JSON request line or a pgwire
/// message body). Whole CSV documents travel in one frame, so the default is
/// generous, but a peer streaming unframed bytes is cut off here instead of
/// growing server memory without limit.
pub const DEFAULT_MAX_FRAME_BYTES: usize = 16 << 20;

/// Cap on concurrently open named sessions. Sessions deliberately survive
/// disconnects, so without a cap a client looping `session_open` with fresh
/// names would grow server memory without limit — the same reasoning as the
/// frame bound.
pub const MAX_SESSIONS: usize = 1024;

/// Cap on prepared statements per named session. Each statement pins its
/// frozen [`SelectionSnapshots`] (outside the profile cache's byte budget),
/// so the registry must be bounded.
pub const MAX_PREPARED_PER_SESSION: usize = 256;

/// Per-client state: everything a front must keep between requests on one
/// connection. Deliberately small — the heavyweight state (named sessions,
/// prepared queries) lives server-side in the [`Service`] so it survives
/// reconnects and is reachable from every front.
#[derive(Default)]
pub struct SessionCtx {
    /// Ad-hoc estimator memo: rebuilt only when a `query` request names a
    /// different estimator set than the previous one on this connection.
    adhoc: Option<(Vec<EstimatorKind>, EstimationSession)>,
}

impl SessionCtx {
    /// A fresh per-client context.
    pub fn new() -> Self {
        SessionCtx::default()
    }
}

/// One prepared query: the SQL parsed once at `prepare` time plus the frozen
/// selection. Interior mutability keeps re-freezing (after a table mutation)
/// off the session map's lock.
struct PreparedQuery {
    sql: String,
    query: AggregateQuery,
    /// The frozen selection and the table state it was captured against.
    frozen: Mutex<Option<FrozenSelection>>,
    executes: AtomicU64,
    frozen_hits: AtomicU64,
}

struct FrozenSelection {
    instance: u64,
    version: u64,
    snapshots: SelectionSnapshots,
}

/// One named server-side session: pinned estimators + prepared queries.
struct NamedSession {
    estimator_names: Vec<String>,
    kinds: Vec<EstimatorKind>,
    session: EstimationSession,
    prepared: Mutex<BTreeMap<String, Arc<PreparedQuery>>>,
    opened: Instant,
    executes: AtomicU64,
    frozen_hits: AtomicU64,
}

/// The transport-agnostic server core. See the module docs.
pub struct Service {
    catalog: RwLock<Catalog>,
    sessions: Mutex<BTreeMap<String, Arc<NamedSession>>>,
    max_frame_bytes: usize,
    started: Instant,
    workers: AtomicU64,
    fronts: Mutex<Vec<String>>,
    connections: AtomicU64,
    requests: AtomicU64,
    errors: AtomicU64,
    conn: ConnCounters,
    slow_query: Mutex<Option<SlowQueryLog>>,
    store: Mutex<Option<Arc<Store>>>,
}

/// Slow-query logging: requests whose `elapsed_us` crosses the threshold are
/// written as one JSON line each (verb, SQL, session, timings, span tree) to
/// the configured sink. Arming this also arms span capture for every query,
/// so the record carries the full trace even when the client did not ask for
/// one.
struct SlowQueryLog {
    threshold: Duration,
    sink: Box<dyn Write + Send>,
}

/// Connection-layer counters maintained by the reactor (the I/O thread that
/// owns every socket): live/peak gauges, frame and byte totals, idle reaps
/// and write-backpressure trips. All relaxed — these are monotone metrics,
/// not synchronization.
#[derive(Default)]
struct ConnCounters {
    open: AtomicU64,
    peak_open: AtomicU64,
    frames_in: AtomicU64,
    frames_out: AtomicU64,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
    idle_reaped: AtomicU64,
    backpressure: AtomicU64,
    queue_depth_peak: AtomicU64,
    queue_wait_us_total: AtomicU64,
    queue_wait_us_max: AtomicU64,
    backend: Mutex<String>,
}

impl Service {
    /// A service over `catalog` with the given frame bound (`0` means
    /// [`DEFAULT_MAX_FRAME_BYTES`]).
    pub fn new(catalog: Catalog, max_frame_bytes: usize) -> Self {
        Service {
            catalog: RwLock::new(catalog),
            sessions: Mutex::new(BTreeMap::new()),
            max_frame_bytes: if max_frame_bytes == 0 {
                DEFAULT_MAX_FRAME_BYTES
            } else {
                max_frame_bytes
            },
            started: Instant::now(),
            workers: AtomicU64::new(0),
            fronts: Mutex::new(Vec::new()),
            connections: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            conn: ConnCounters::default(),
            slow_query: Mutex::new(None),
            store: Mutex::new(None),
        }
    }

    /// The inbound frame bound fronts must enforce.
    pub fn max_frame_bytes(&self) -> usize {
        self.max_frame_bytes
    }

    /// Records the handler-pool size for `stats` / `server_info`.
    pub fn set_workers(&self, workers: usize) {
        self.workers.store(workers as u64, Ordering::Relaxed);
    }

    /// Registers an enabled front by name (reported by `server_info`).
    pub fn register_front(&self, name: &str) {
        let mut fronts = self.fronts.lock().expect("fronts lock");
        if !fronts.iter().any(|f| f == name) {
            fronts.push(name.to_string());
        }
    }

    /// Counts one accepted connection (any front) and moves the live/peak
    /// gauges.
    pub fn connection_opened(&self) {
        self.connections.fetch_add(1, Ordering::Relaxed);
        let now_open = self.conn.open.fetch_add(1, Ordering::Relaxed) + 1;
        self.conn.peak_open.fetch_max(now_open, Ordering::Relaxed);
    }

    /// Moves the live-connection gauge back down when a connection closes
    /// (peer hangup, fatal framing error, idle reap, shutdown drain).
    pub fn connection_closed(&self) {
        self.conn.open.fetch_sub(1, Ordering::Relaxed);
    }

    /// Records which readiness backend the reactor selected (`epoll` or
    /// `poll`), reported by `stats`.
    pub fn set_reactor_backend(&self, name: &str) {
        *self.conn.backend.lock().expect("backend lock") = name.to_string();
    }

    /// Counts one complete inbound frame (a JSON line or a pgwire message).
    pub fn note_frame_in(&self) {
        self.conn.frames_in.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one queued outbound reply.
    pub fn note_frame_out(&self) {
        self.conn.frames_out.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds to the inbound byte total.
    pub fn note_bytes_in(&self, n: u64) {
        self.conn.bytes_in.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds to the outbound byte total.
    pub fn note_bytes_out(&self, n: u64) {
        self.conn.bytes_out.fetch_add(n, Ordering::Relaxed);
    }

    /// Counts one connection closed by the idle-timeout reaper.
    pub fn note_idle_reaped(&self) {
        self.conn.idle_reaped.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one write-backpressure trip (a connection's unflushed output
    /// crossed the high-water mark and its reads were paused).
    pub fn note_backpressure(&self) {
        self.conn.backpressure.fetch_add(1, Ordering::Relaxed);
    }

    /// Moves the reactor work-queue high-water mark: `depth` is the queue
    /// length observed right after an enqueue.
    pub fn note_queue_depth(&self, depth: u64) {
        self.conn
            .queue_depth_peak
            .fetch_max(depth, Ordering::Relaxed);
    }

    /// Records the time one request spent parked in the reactor's work queue
    /// before a worker picked it up.
    pub fn note_queue_wait(&self, wait: Duration) {
        let us = wait.as_micros() as u64;
        self.conn
            .queue_wait_us_total
            .fetch_add(us, Ordering::Relaxed);
        self.conn.queue_wait_us_max.fetch_max(us, Ordering::Relaxed);
    }

    /// Arms the slow-query log: every `query` / `execute_prepared` whose
    /// service time reaches `threshold` is appended to `sink` as one JSON
    /// line carrying the full span tree. Passing the sink by trait object
    /// keeps the service transport-agnostic — a file, stderr, or a test
    /// buffer all work.
    pub fn set_slow_query_log(&self, threshold: Duration, sink: Box<dyn Write + Send>) {
        *self.slow_query.lock().expect("slow-query lock") = Some(SlowQueryLog { threshold, sink });
    }

    /// Arms durability: every committed `load_csv`/`append_stream` batch is
    /// WAL-logged through `store` **before** the in-memory catalog mutation,
    /// `checkpoint` / clean `shutdown` write snapshots to its data dir, and
    /// `stats` / `server_info` report its counters.
    pub fn set_store(&self, store: Arc<Store>) {
        *self.store.lock().expect("store lock") = Some(store);
    }

    /// The armed durability store, when `--data-dir` configured one.
    pub fn store(&self) -> Option<Arc<Store>> {
        self.store.lock().expect("store lock").clone()
    }

    /// Whether slow-query logging is armed (and with what threshold).
    pub fn slow_query_threshold(&self) -> Option<Duration> {
        self.slow_query
            .lock()
            .expect("slow-query lock")
            .as_ref()
            .map(|log| log.threshold)
    }

    /// Renders the Prometheus text-format exposition: the per-(verb, stage)
    /// latency histograms from [`uu_core::obs`] plus the server-wide request
    /// and connection gauges. This is the body the `--metrics-port` HTTP
    /// front serves; keeping the rendering here means an embedded caller can
    /// scrape without a socket.
    pub fn render_prometheus(&self) -> String {
        let mut out = obs::render_prometheus(&obs::snapshot());
        let series: [(&str, &str, u64); 6] = [
            (
                "uu_connections_open",
                "Connections currently open across all fronts.",
                self.conn.open.load(Ordering::Relaxed),
            ),
            (
                "uu_connections_peak",
                "High-water mark of concurrently open connections.",
                self.conn.peak_open.load(Ordering::Relaxed),
            ),
            (
                "uu_queue_depth_peak",
                "High-water mark of the reactor work-queue depth.",
                self.conn.queue_depth_peak.load(Ordering::Relaxed),
            ),
            (
                "uu_requests_total",
                "Requests dispatched since startup.",
                self.requests.load(Ordering::Relaxed),
            ),
            (
                "uu_errors_total",
                "Error responses since startup.",
                self.errors.load(Ordering::Relaxed),
            ),
            (
                "uu_queue_wait_microseconds_total",
                "Total time requests spent queued before a worker picked them up.",
                self.conn.queue_wait_us_total.load(Ordering::Relaxed),
            ),
        ];
        for (name, help, value) in series {
            let kind = if name.ends_with("_total") {
                "counter"
            } else {
                "gauge"
            };
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} {kind}\n{name} {value}\n"
            ));
        }
        out
    }

    /// Counts an error produced by a front outside [`Service::dispatch`]
    /// (e.g. an oversized frame answered at the framing layer).
    pub fn note_error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Decodes and dispatches one request line — the framing-free entry the
    /// line-JSON front uses. Decode failures are counted and answered like
    /// any other error.
    pub fn dispatch_line(&self, ctx: &mut SessionCtx, line: &str) -> Response {
        self.dispatch_line_timed(ctx, line, None)
    }

    /// [`Service::dispatch_line`] with the time the frame spent parked in
    /// the reactor's work queue, when the front measured it. The wait feeds
    /// the `queue_wait` histogram/conn counters and, when the request is
    /// traced, a synthetic root span — it is *not* part of the reply's
    /// `elapsed_us`, which remains pure service time.
    pub fn dispatch_line_timed(
        &self,
        ctx: &mut SessionCtx,
        line: &str,
        queue_wait: Option<Duration>,
    ) -> Response {
        match Request::decode(line) {
            Ok(request) => self.dispatch_timed(ctx, request, queue_wait),
            Err(e) => {
                self.requests.fetch_add(1, Ordering::Relaxed);
                self.errors.fetch_add(1, Ordering::Relaxed);
                Response::Error(WireError::new(ErrorCode::MalformedRequest, e.to_string()))
            }
        }
    }

    /// Dispatches one request: a total function with no transport types in
    /// its signature. Every front routes through here.
    pub fn dispatch(&self, ctx: &mut SessionCtx, request: Request) -> Response {
        self.dispatch_timed(ctx, request, None)
    }

    /// [`Service::dispatch`] plus the observability envelope: attributes the
    /// request to its [`Verb`], opens the `request` umbrella span, decides
    /// whether to capture a span tree (client asked via `"trace": true`,
    /// `UU_TRACE=1` is set, or the slow-query log is armed), attaches the
    /// tree to traced query replies, and emits the slow-query record when
    /// the threshold is crossed.
    pub fn dispatch_timed(
        &self,
        ctx: &mut SessionCtx,
        request: Request,
        queue_wait: Option<Duration>,
    ) -> Response {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let verb = verb_of(&request);
        let _verb_scope = obs::verb_scope(verb);
        if let Some(wait) = queue_wait {
            self.note_queue_wait(wait);
        }

        let is_query = matches!(request, Request::Query(_) | Request::ExecutePrepared { .. });
        let wants_trace = matches!(&request, Request::Query(q) if q.trace)
            || (is_query && obs::env_trace_enabled());
        let slow_armed = is_query && self.slow_query_threshold().is_some();
        let tracing = (wants_trace || slow_armed) && obs::trace_begin();
        if let Some(wait) = queue_wait {
            // Histogram always; becomes a root span too while tracing.
            obs::trace_push_complete(Stage::QueueWait, wait);
        }
        let slow_session = match &request {
            Request::ExecutePrepared { session, .. } => Some(session.clone()),
            _ => None,
        };

        let mut response = {
            let _span = obs::span(Stage::Request);
            self.dispatch_inner(ctx, request)
        };

        let trace = if tracing { obs::trace_take() } else { None };
        if wants_trace {
            if let (Some(trace), Response::Query(reply)) = (&trace, &mut response) {
                reply.trace = Some(wire_trace(trace));
            }
        }
        if slow_armed {
            self.maybe_log_slow(verb, slow_session.as_deref(), &response, trace.as_ref());
        }
        if matches!(response, Response::Error(_)) {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
        response
    }

    /// Appends one JSON line to the slow-query sink when the reply's service
    /// time reached the armed threshold.
    fn maybe_log_slow(
        &self,
        verb: Verb,
        session: Option<&str>,
        response: &Response,
        trace: Option<&obs::Trace>,
    ) {
        let Response::Query(reply) = response else {
            return;
        };
        let mut guard = self.slow_query.lock().expect("slow-query lock");
        let Some(log) = guard.as_mut() else { return };
        if Duration::from_micros(reply.elapsed_us) < log.threshold {
            return;
        }
        let ts_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis() as i64)
            .unwrap_or(0);
        let spans = trace.map(wire_trace).unwrap_or_default();
        let record = Json::obj([
            ("ts_ms", Json::Int(ts_ms)),
            ("verb", Json::Str(verb.as_str().to_string())),
            ("sql", Json::Str(reply.sql.clone())),
            (
                "session",
                match session {
                    Some(name) => Json::Str(name.to_string()),
                    None => Json::Null,
                },
            ),
            ("elapsed_us", Json::Int(reply.elapsed_us as i64)),
            ("cache_hit", Json::Bool(reply.cache_hit)),
            ("grouped", Json::Bool(reply.grouped)),
            (
                "trace",
                Json::Arr(spans.iter().map(WireSpan::to_json).collect()),
            ),
        ]);
        let _ = writeln!(log.sink, "{}", record.render());
        let _ = log.sink.flush();
    }

    fn dispatch_inner(&self, ctx: &mut SessionCtx, request: Request) -> Response {
        match request {
            Request::Ping => Response::Pong,
            Request::Shutdown => {
                // A clean shutdown leaves nothing to replay: flush the WAL
                // and write a final checkpoint so the next start recovers
                // purely from snapshots. Failures are logged, not fatal —
                // the WAL alone already preserves every committed batch.
                if let Some(store) = self.store() {
                    let catalog = self.catalog.read().expect("catalog lock");
                    let result = store
                        .flush()
                        .and_then(|()| store.checkpoint(&catalog).map(|_| ()));
                    if let Err(e) = result {
                        eprintln!("uu-server: final checkpoint failed: {e}");
                    }
                }
                Response::Bye
            }
            Request::Checkpoint => match self.store() {
                Some(store) => {
                    let catalog = self.catalog.read().expect("catalog lock");
                    match store.checkpoint(&catalog) {
                        Ok((tables, bytes)) => Response::Checkpointed { tables, bytes },
                        Err(e) => {
                            Response::Error(WireError::new(ErrorCode::Storage, e.to_string()))
                        }
                    }
                }
                None => Response::Error(WireError::new(
                    ErrorCode::Storage,
                    "durability is not armed (start the server with --data-dir)",
                )),
            },
            Request::Stats => Response::Stats(Box::new(self.stats())),
            Request::Metrics => Response::Metrics(self.metrics_reply()),
            Request::ServerInfo => Response::Info(self.server_info()),
            Request::Warm { sql } => {
                let catalog = self.catalog.read().expect("catalog lock");
                match catalog.warm_sql(&sql) {
                    Ok((universes, already_cached)) => Response::Warmed {
                        sql,
                        universes: universes as u64,
                        already_cached,
                    },
                    Err(e) => Response::Error(WireError::from_exec(&e)),
                }
            }
            Request::LoadCsv(load) => match self.load_csv(&load) {
                Ok(response) => response,
                Err(e) => Response::Error(e),
            },
            Request::AppendStream {
                table,
                source_column,
                csv,
            } => match self.append_stream(&table, &source_column, &csv) {
                Ok(response) => response,
                Err(e) => Response::Error(e),
            },
            Request::Query(query) => match self.run_query(&query, ctx) {
                Ok(reply) => Response::Query(reply),
                Err(e) => Response::Error(e),
            },
            Request::SessionOpen { name, estimators } => {
                match self.session_open(&name, &estimators) {
                    Ok(response) => response,
                    Err(e) => Response::Error(e),
                }
            }
            Request::SessionClose { name } => match self.session_close(&name) {
                Ok(response) => response,
                Err(e) => Response::Error(e),
            },
            Request::Prepare { session, name, sql } => match self.prepare(&session, &name, &sql) {
                Ok(response) => response,
                Err(e) => Response::Error(e),
            },
            Request::ExecutePrepared { session, name } => {
                match self.execute_prepared(&session, &name) {
                    Ok(reply) => Response::Query(reply),
                    Err(e) => Response::Error(e),
                }
            }
            Request::Deallocate { session, name } => match self.deallocate(&session, &name) {
                Ok(response) => response,
                Err(e) => Response::Error(e),
            },
        }
    }

    // -----------------------------------------------------------------------
    // Named sessions / prepared queries
    // -----------------------------------------------------------------------

    fn session(&self, name: &str) -> Result<Arc<NamedSession>, WireError> {
        self.sessions
            .lock()
            .expect("sessions lock")
            .get(name)
            .cloned()
            .ok_or_else(|| {
                WireError::new(
                    ErrorCode::UnknownSession,
                    format!("no open session named {name:?}"),
                )
            })
    }

    fn session_open(&self, name: &str, estimators: &[String]) -> Result<Response, WireError> {
        let kinds = estimators
            .iter()
            .map(|n| EstimatorKind::by_name(n))
            .collect::<Result<Vec<_>, _>>()
            .map_err(|e| WireError::unknown_estimator(&e))?;
        let estimator_names: Vec<String> = kinds.iter().map(|k| k.name().to_string()).collect();
        let mut sessions = self.sessions.lock().expect("sessions lock");
        if sessions.contains_key(name) {
            return Err(WireError::new(
                ErrorCode::DuplicateSession,
                format!("session {name:?} is already open"),
            ));
        }
        if sessions.len() >= MAX_SESSIONS {
            return Err(WireError::new(
                ErrorCode::ResourceLimit,
                format!("too many open sessions (limit {MAX_SESSIONS}); close one first"),
            ));
        }
        sessions.insert(
            name.to_string(),
            Arc::new(NamedSession {
                estimator_names: estimator_names.clone(),
                session: EstimationSession::new(kinds.clone()),
                kinds,
                prepared: Mutex::new(BTreeMap::new()),
                opened: Instant::now(),
                executes: AtomicU64::new(0),
                frozen_hits: AtomicU64::new(0),
            }),
        );
        Ok(Response::SessionOpened {
            name: name.to_string(),
            estimators: estimator_names,
        })
    }

    fn session_close(&self, name: &str) -> Result<Response, WireError> {
        let session = self
            .sessions
            .lock()
            .expect("sessions lock")
            .remove(name)
            .ok_or_else(|| {
                WireError::new(
                    ErrorCode::UnknownSession,
                    format!("no open session named {name:?}"),
                )
            })?;
        let prepared_dropped = session.prepared.lock().expect("prepared lock").len() as u64;
        Ok(Response::SessionClosed {
            name: name.to_string(),
            prepared_dropped,
        })
    }

    fn prepare(&self, session_name: &str, name: &str, sql: &str) -> Result<Response, WireError> {
        let session = self.session(session_name)?;
        let query = parse(sql).map_err(|e| WireError::new(ErrorCode::Parse, e.to_string()))?;
        // Capture (and cache) the selection eagerly: a bad table name fails
        // here, at prepare time, and the first execute is already a pure
        // thaw.
        let catalog = self.catalog.read().expect("catalog lock");
        let table = catalog
            .get(&query.table)
            .ok_or_else(|| WireError::new(ErrorCode::UnknownTable, query.table.clone()))?;
        let (instance, version) = (table.instance(), table.version());
        let (snapshots, already_cached) = catalog
            .selection_query(&query)
            .map_err(|e| WireError::from_exec(&e))?;
        let universes = snapshots.len() as u64;
        let mut prepared = session.prepared.lock().expect("prepared lock");
        if prepared.contains_key(name) {
            return Err(WireError::new(
                ErrorCode::DuplicatePrepared,
                format!("statement {name:?} is already prepared in session {session_name:?}"),
            ));
        }
        if prepared.len() >= MAX_PREPARED_PER_SESSION {
            return Err(WireError::new(
                ErrorCode::ResourceLimit,
                format!(
                    "session {session_name:?} holds the maximum of \
                     {MAX_PREPARED_PER_SESSION} prepared statements; deallocate one first"
                ),
            ));
        }
        prepared.insert(
            name.to_string(),
            Arc::new(PreparedQuery {
                sql: sql.to_string(),
                query,
                frozen: Mutex::new(Some(FrozenSelection {
                    instance,
                    version,
                    snapshots,
                })),
                executes: AtomicU64::new(0),
                frozen_hits: AtomicU64::new(0),
            }),
        );
        Ok(Response::Prepared {
            session: session_name.to_string(),
            name: name.to_string(),
            sql: sql.to_string(),
            universes,
            already_cached,
        })
    }

    fn deallocate(&self, session_name: &str, name: &str) -> Result<Response, WireError> {
        let session = self.session(session_name)?;
        session
            .prepared
            .lock()
            .expect("prepared lock")
            .remove(name)
            .ok_or_else(|| unknown_prepared(session_name, name))?;
        Ok(Response::Deallocated {
            session: session_name.to_string(),
            name: name.to_string(),
        })
    }

    fn execute_prepared(&self, session_name: &str, name: &str) -> Result<QueryReply, WireError> {
        let start = Instant::now();
        let session = self.session(session_name)?;
        let stmt = session
            .prepared
            .lock()
            .expect("prepared lock")
            .get(name)
            .cloned()
            .ok_or_else(|| unknown_prepared(session_name, name))?;

        let catalog = self.catalog.read().expect("catalog lock");
        let table = catalog
            .get(&stmt.query.table)
            .ok_or_else(|| WireError::new(ErrorCode::UnknownTable, stmt.query.table.clone()))?;
        let (instance, version) = (table.instance(), table.version());
        // Reuse the frozen selection while the table state matches; re-fetch
        // through the profile cache (and re-freeze) otherwise.
        let mut frozen = stmt.frozen.lock().expect("frozen lock");
        let (snapshots, cache_hit) = match frozen.as_ref() {
            Some(f) if f.instance == instance && f.version == version => {
                stmt.frozen_hits.fetch_add(1, Ordering::Relaxed);
                session.frozen_hits.fetch_add(1, Ordering::Relaxed);
                (Arc::clone(&f.snapshots), true)
            }
            _ => {
                let (snapshots, hit) = catalog
                    .selection_query(&stmt.query)
                    .map_err(|e| WireError::from_exec(&e))?;
                *frozen = Some(FrozenSelection {
                    instance,
                    version,
                    snapshots: Arc::clone(&snapshots),
                });
                (snapshots, hit)
            }
        };
        drop(frozen);
        stmt.executes.fetch_add(1, Ordering::Relaxed);
        session.executes.fetch_add(1, Ordering::Relaxed);

        let method = session
            .kinds
            .first()
            .copied()
            .map(correction_for)
            .unwrap_or(CorrectionMethod::None);
        let rows = uu_query::exec::results_from_selection(&stmt.query, &snapshots, method);
        let estimates = snapshots
            .iter()
            .map(|(_, snapshot)| {
                if session.kinds.is_empty() {
                    Vec::new()
                } else {
                    session
                        .session
                        .run_profiled(&snapshot.profile())
                        .iter()
                        .map(WireEstimate::from_named)
                        .collect()
                }
            })
            .collect();
        let mut out = {
            let _span = obs::span(Stage::Serialize);
            reply(
                stmt.sql.clone(),
                cache_hit,
                0,
                stmt.query.group_by.is_some(),
                rows,
                estimates,
            )
        };
        out.elapsed_us = start.elapsed().as_micros() as u64;
        Ok(out)
    }

    // -----------------------------------------------------------------------
    // Ad-hoc queries (per-connection estimator memo)
    // -----------------------------------------------------------------------

    fn run_query(
        &self,
        request: &QueryRequest,
        ctx: &mut SessionCtx,
    ) -> Result<QueryReply, WireError> {
        let start = Instant::now();
        let query = {
            let _span = obs::span(Stage::Parse);
            parse(&request.sql).map_err(|e| WireError::new(ErrorCode::Parse, e.to_string()))?
        };
        let kinds = request
            .estimators
            .iter()
            .map(|name| EstimatorKind::by_name(name))
            .collect::<Result<Vec<_>, _>>()
            .map_err(|e| WireError::unknown_estimator(&e))?;
        let method = kinds
            .first()
            .copied()
            .map(correction_for)
            .unwrap_or(CorrectionMethod::None);
        let grouped = query.group_by.is_some();

        // Reuse the connection's session when the estimator set is unchanged.
        if !kinds.is_empty()
            && !ctx
                .adhoc
                .as_ref()
                .is_some_and(|(memo_kinds, _)| memo_kinds == &kinds)
        {
            ctx.adhoc = Some((kinds.clone(), EstimationSession::new(kinds.clone())));
        }
        let session = (!kinds.is_empty()).then(|| &ctx.adhoc.as_ref().expect("built above").1);

        let catalog = self.catalog.read().expect("catalog lock");
        let (rows, estimates, cache_hit): (Vec<GroupResult>, Vec<Vec<WireEstimate>>, bool) =
            if request.cached {
                // Fetch-once: exactly one cache lookup per request. The
                // selection's snapshots feed both the corrected aggregate
                // (the same computation step `execute_sql_grouped_cached`
                // runs) and the session fan-out, so cache counters honestly
                // record one miss per cold query and one hit per repeat.
                let (snapshots, hit) = catalog
                    .selection_query(&query)
                    .map_err(|e| WireError::from_exec(&e))?;
                let rows = uu_query::exec::results_from_selection(&query, &snapshots, method);
                let estimates = snapshots
                    .iter()
                    .map(|(_, snapshot)| match session {
                        Some(session) => session
                            .run_profiled(&snapshot.profile())
                            .iter()
                            .map(WireEstimate::from_named)
                            .collect(),
                        None => Vec::new(),
                    })
                    .collect();
                (rows, estimates, hit)
            } else {
                let rows = catalog
                    .execute_sql_grouped(&request.sql, method)
                    .map_err(|e| WireError::from_exec(&e))?;
                let table = catalog
                    .get(&query.table)
                    .ok_or_else(|| WireError::new(ErrorCode::UnknownTable, &query.table))?;
                let universes: Vec<(Value, uu_core::sample::SampleView)> =
                    match query.group_by.as_deref() {
                        Some(group_column) => table
                            .grouped_sample_views(
                                query.column.as_deref(),
                                &query.predicate,
                                group_column,
                            )
                            .map_err(|e| WireError::new(ErrorCode::Table, e.to_string()))?,
                        None => vec![(
                            Value::Null,
                            table
                                .sample_view(query.column.as_deref(), &query.predicate)
                                .map_err(|e| WireError::new(ErrorCode::Table, e.to_string()))?,
                        )],
                    };
                // Pair estimates with result rows **by group key**, not by
                // position: both derive from the same deterministic grouping
                // today, but the reply must not silently mis-attribute Δs if
                // that ever changes. Keys compare with `same_key`, not
                // derived PartialEq — a Float(NaN) group key must match its
                // own universe.
                let estimates = rows
                    .iter()
                    .map(|row| {
                        let view = universes
                            .iter()
                            .find(|(key, _)| same_key(key, &row.key))
                            .map(|(_, view)| view)
                            .expect("every result row has a matching universe");
                        match session {
                            Some(session) => session
                                .run(view)
                                .iter()
                                .map(WireEstimate::from_named)
                                .collect(),
                            None => Vec::new(),
                        }
                    })
                    .collect();
                (rows, estimates, false)
            };
        let mut out = {
            let _span = obs::span(Stage::Serialize);
            reply(request.sql.clone(), cache_hit, 0, grouped, rows, estimates)
        };
        // Measured after serialization so a traced reply's span tree tiles
        // the whole reported service time.
        out.elapsed_us = start.elapsed().as_micros() as u64;
        Ok(out)
    }

    // -----------------------------------------------------------------------
    // Admin verbs
    // -----------------------------------------------------------------------

    /// Loads a CSV **atomically**: a fresh load is ingested into a staged
    /// table and only registered once the whole document succeeded; an
    /// `append` is parsed into a validated batch and applied through the
    /// catalog's delta path ([`Catalog::append_observations`]), which stages
    /// the batch the same way — a bad row half-way through a document can
    /// never leave a partially-loaded table behind, so a corrected retry
    /// with the same request is always safe. Routing the append through the
    /// delta path keeps warm state alive: projections grow in place and
    /// cached selections re-freeze instead of being evicted.
    fn load_csv(&self, load: &LoadCsvRequest) -> Result<Response, WireError> {
        let store = self.store();
        let mut catalog = self.catalog.write().expect("catalog lock");
        let exists = catalog.get(&load.table).is_some();
        if exists && !load.append {
            return Err(WireError::new(
                ErrorCode::DuplicateTable,
                format!(
                    "table {:?} is already registered (set \"append\": true to extend it)",
                    load.table
                ),
            ));
        }
        if exists {
            let table = catalog.get(&load.table).expect("checked above");
            let schema = table.schema().clone();
            let version_before = table.version();
            let batch = parse_observations(&schema, &load.csv, &load.source_column)
                .map_err(|e| WireError::new(ErrorCode::Csv, e.to_string()))?;
            let rows = batch.len() as u64;
            // WAL before the in-memory mutation: a crash between the two
            // replays the batch; a crash before the write loses an
            // unacknowledged request, never a committed one.
            if let Some(store) = &store {
                store
                    .log_append(&load.table, version_before, &batch)
                    .map_err(storage_error)?;
            }
            let (delta, _refrozen) = catalog
                .append_observations(&load.table, batch)
                .map_err(|e| WireError::from_exec(&e))?;
            if let Some(store) = &store {
                if let Err(e) = store.maybe_checkpoint(&catalog, rows) {
                    eprintln!("uu-server: background checkpoint failed: {e}");
                }
            }
            return Ok(Response::Loaded {
                table: load.table.clone(),
                observations: delta.version_after - delta.version_before,
                entities: delta.rows_after as u64,
            });
        }
        let columns = load
            .columns
            .iter()
            .map(|(name, ty)| Ok((name.clone(), parse_column_type(ty)?)))
            .collect::<Result<Vec<_>, WireError>>()?;
        let mut staged = IntegratedTable::new(
            &load.table,
            Schema::new(columns.clone()),
            &load.entity_column,
        )
        .map_err(|e| WireError::new(ErrorCode::Table, e.to_string()))?;
        let batch = parse_observations(staged.schema(), &load.csv, &load.source_column)
            .map_err(|e| WireError::new(ErrorCode::Csv, e.to_string()))?;
        for (source, values) in &batch {
            // Same staging `load_observations` performs, kept explicit so
            // the fully validated batch is in hand for the WAL record
            // (`CsvError::Table` displays as the inner error, so the error
            // text is unchanged).
            staged
                .insert_observation(*source, values.clone())
                .map_err(|e| WireError::new(ErrorCode::Csv, e.to_string()))?;
        }
        let observations = batch.len() as u64;
        let entities = staged.len() as u64;
        // Log only after every row validated: the WAL holds committed
        // batches, never half-loads.
        if let Some(store) = &store {
            store
                .log_fresh(&load.table, &columns, &load.entity_column, &batch)
                .map_err(storage_error)?;
        }
        catalog
            .register(staged)
            .map_err(|e| WireError::new(ErrorCode::DuplicateTable, e.to_string()))?;
        Ok(Response::Loaded {
            table: load.table.clone(),
            observations,
            entities,
        })
    }

    /// Appends an observation batch to an existing table through the
    /// incremental-maintenance path. The batch is validated in full before
    /// any row is applied (same staging as `load_csv`), so a failed append
    /// leaves the table untouched.
    fn append_stream(
        &self,
        table: &str,
        source_column: &str,
        csv: &str,
    ) -> Result<Response, WireError> {
        let store = self.store();
        let mut catalog = self.catalog.write().expect("catalog lock");
        let existing = catalog
            .get(table)
            .ok_or_else(|| WireError::new(ErrorCode::UnknownTable, table))?;
        let schema = existing.schema().clone();
        let version_before = existing.version();
        let batch = parse_observations(&schema, csv, source_column)
            .map_err(|e| WireError::new(ErrorCode::Csv, e.to_string()))?;
        let rows = batch.len() as u64;
        // WAL first, mutate second — see `load_csv`.
        if let Some(store) = &store {
            store
                .log_append(table, version_before, &batch)
                .map_err(storage_error)?;
        }
        let (delta, refrozen) = catalog
            .append_observations(table, batch)
            .map_err(|e| WireError::from_exec(&e))?;
        if let Some(store) = &store {
            if let Err(e) = store.maybe_checkpoint(&catalog, rows) {
                eprintln!("uu-server: background checkpoint failed: {e}");
            }
        }
        Ok(Response::Appended {
            table: table.to_string(),
            observations: delta.version_after - delta.version_before,
            entities: delta.rows_after as u64,
            refrozen,
            incremental: delta.incremental,
        })
    }

    /// The `server_info` payload.
    pub fn server_info(&self) -> ServerInfoReply {
        let store = self.store();
        ServerInfoReply {
            version: env!("CARGO_PKG_VERSION").to_string(),
            protocol: PROTOCOL_VERSION,
            uptime_ms: self.started.elapsed().as_millis() as u64,
            active_sessions: self.sessions.lock().expect("sessions lock").len() as u64,
            fronts: self.fronts.lock().expect("fronts lock").clone(),
            workers: self.workers.load(Ordering::Relaxed),
            data_dir: store.as_ref().map(|s| s.dir().display().to_string()),
            durability: store
                .as_ref()
                .map(|s| s.policy().as_str().to_string())
                .unwrap_or_else(|| "off".to_string()),
            last_checkpoint_age_ms: store
                .as_ref()
                .and_then(|s| s.last_checkpoint_age())
                .map(|age| age.as_secs_f64() * 1e3),
        }
    }

    /// The `stats` payload.
    pub fn stats(&self) -> StatsReply {
        let catalog = self.catalog.read().expect("catalog lock");
        let cache = catalog.cache();
        let cache_metrics = cache.metrics();
        let (projection_builds, projection_reuses, projection_bytes) = catalog.projection_stats();
        let incremental = catalog.incremental_stats();
        let exec_metrics = uu_core::exec::global().metrics();
        let sessions = self
            .sessions
            .lock()
            .expect("sessions lock")
            .iter()
            .map(|(name, s)| WireSessionStats {
                name: name.clone(),
                estimators: s.estimator_names.clone(),
                prepared: s.prepared.lock().expect("prepared lock").len() as u64,
                executes: s.executes.load(Ordering::Relaxed),
                frozen_hits: s.frozen_hits.load(Ordering::Relaxed),
                age_ms: s.opened.elapsed().as_millis() as u64,
            })
            .collect();
        StatsReply {
            protocol: PROTOCOL_VERSION,
            tables: catalog
                .table_names()
                .into_iter()
                .map(str::to_string)
                .collect(),
            workers: self.workers.load(Ordering::Relaxed),
            connections: self.connections.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            uptime_ms: self.started.elapsed().as_millis() as u64,
            sessions,
            cache: WireCacheStats {
                hits: cache_metrics.hits,
                misses: cache_metrics.misses,
                insertions: cache_metrics.insertions,
                evictions: cache_metrics.evictions,
                invalidations: cache_metrics.invalidations,
                expirations: cache_metrics.expirations,
                len: cache_metrics.len as u64,
                bytes: cache_metrics.bytes as u64,
                capacity: cache.capacity() as u64,
                byte_budget: cache.byte_budget().map(|b| b as f64),
                ttl_ms: cache.ttl().map(|t| t.as_secs_f64() * 1e3),
            },
            projection: WireProjectionStats {
                builds: projection_builds,
                reuses: projection_reuses,
                bytes: projection_bytes as u64,
            },
            exec: WireExecStats {
                threads: exec_metrics.threads as u64,
                regions: exec_metrics.regions,
                parallel_regions: exec_metrics.parallel_regions,
                tasks: exec_metrics.tasks,
                steals: exec_metrics.steals,
                peak_workers: exec_metrics.peak_workers as u64,
            },
            conn: WireConnStats {
                open: self.conn.open.load(Ordering::Relaxed),
                peak_open: self.conn.peak_open.load(Ordering::Relaxed),
                frames_in: self.conn.frames_in.load(Ordering::Relaxed),
                frames_out: self.conn.frames_out.load(Ordering::Relaxed),
                bytes_in: self.conn.bytes_in.load(Ordering::Relaxed),
                bytes_out: self.conn.bytes_out.load(Ordering::Relaxed),
                idle_reaped: self.conn.idle_reaped.load(Ordering::Relaxed),
                backpressure: self.conn.backpressure.load(Ordering::Relaxed),
                queue_depth_peak: self.conn.queue_depth_peak.load(Ordering::Relaxed),
                queue_wait_us_total: self.conn.queue_wait_us_total.load(Ordering::Relaxed),
                queue_wait_us_max: self.conn.queue_wait_us_max.load(Ordering::Relaxed),
                backend: self.conn.backend.lock().expect("backend lock").clone(),
            },
            incremental: WireIncrementalStats {
                delta_batches: incremental.delta_batches,
                rows_appended: incremental.rows_appended,
                permutation_merges: incremental.permutation_merges,
                snapshots_refrozen: incremental.snapshots_refrozen,
                fallback_rebuilds: incremental.fallback_rebuilds,
            },
            storage: match self.store() {
                Some(store) => {
                    let s = store.stats();
                    WireStorageStats {
                        wal_records: s.wal_records,
                        wal_bytes: s.wal_bytes,
                        fsyncs: s.fsyncs,
                        checkpoints: s.checkpoints,
                        recovered_tables: s.recovered_tables,
                        replayed_records: s.replayed_records,
                        truncated_tail_bytes: s.truncated_tail_bytes,
                    }
                }
                None => WireStorageStats::default(),
            },
        }
    }

    /// The `metrics` payload: one quantile digest per `(verb, stage)` pair
    /// that has recorded at least one sample, derived from the merged
    /// per-worker histogram shards. Quantiles are bucket upper bounds
    /// (clamped to the observed min/max), reported in microseconds.
    pub fn metrics_reply(&self) -> MetricsReply {
        let snapshot = obs::snapshot();
        let entries = snapshot
            .entries
            .iter()
            .map(|entry| WireStageMetrics {
                verb: entry.verb.as_str().to_string(),
                stage: entry.stage.as_str().to_string(),
                count: entry.hist.count,
                p50_us: entry.hist.quantile_ns(0.50) as f64 / 1e3,
                p90_us: entry.hist.quantile_ns(0.90) as f64 / 1e3,
                p99_us: entry.hist.quantile_ns(0.99) as f64 / 1e3,
                max_us: entry.hist.max_ns as f64 / 1e3,
                mean_us: entry.hist.mean_ns() as f64 / 1e3,
            })
            .collect();
        MetricsReply { entries }
    }
}

/// The [`Verb`] a request is attributed to in the stage histograms.
fn verb_of(request: &Request) -> Verb {
    match request {
        Request::Query(_) => Verb::Query,
        Request::ExecutePrepared { .. } => Verb::Prepared,
        Request::AppendStream { .. } => Verb::Append,
        Request::LoadCsv(_) => Verb::Load,
        Request::Warm { .. } => Verb::Warm,
        _ => Verb::Other,
    }
}

/// Converts a captured span tree to its wire form (parent links become
/// indices into the same array).
fn wire_trace(trace: &obs::Trace) -> Vec<WireSpan> {
    trace
        .spans
        .iter()
        .map(|span| WireSpan {
            stage: span.stage.as_str().to_string(),
            label: span.label.clone(),
            parent: span.parent.map(|p| p as u64),
            start_ns: span.start_ns,
            dur_ns: span.dur_ns,
        })
        .collect()
}

fn reply(
    sql: String,
    cache_hit: bool,
    elapsed_us: u64,
    grouped: bool,
    rows: Vec<GroupResult>,
    estimates: Vec<Vec<WireEstimate>>,
) -> QueryReply {
    debug_assert_eq!(rows.len(), estimates.len());
    let groups = rows
        .into_iter()
        .zip(estimates)
        .map(|(row, est)| GroupReply {
            key: WireValue(row.key),
            result: WireResult::from_result(&row.result, est),
        })
        .collect();
    QueryReply {
        sql,
        cache_hit,
        elapsed_us,
        grouped,
        groups,
        trace: None,
    }
}

/// Group-key equality for pairing result rows with their universes: derived
/// `PartialEq` would make a `Float(NaN)` key match nothing (NaN != NaN),
/// panicking the pairing even though both sides came from the identical
/// grouping. Total float comparison treats NaN as equal to itself.
fn same_key(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Float(x), Value::Float(y)) => x.total_cmp(y) == std::cmp::Ordering::Equal,
        _ => a == b,
    }
}

fn storage_error(e: uu_store::StoreError) -> WireError {
    WireError::new(ErrorCode::Storage, e.to_string())
}

fn unknown_prepared(session: &str, name: &str) -> WireError {
    WireError::new(
        ErrorCode::UnknownPrepared,
        format!("no prepared statement {name:?} in session {session:?}"),
    )
}

/// The primary correction a registry kind applies to the aggregate.
pub(crate) fn correction_for(kind: EstimatorKind) -> CorrectionMethod {
    match kind {
        EstimatorKind::Naive => CorrectionMethod::Naive,
        EstimatorKind::Frequency => CorrectionMethod::Frequency,
        EstimatorKind::Bucket => CorrectionMethod::Bucket,
        EstimatorKind::MonteCarlo(cfg) => CorrectionMethod::MonteCarlo(cfg),
        EstimatorKind::Policy => CorrectionMethod::Auto,
    }
}

fn parse_column_type(ty: &str) -> Result<ColumnType, WireError> {
    match ty.to_ascii_lowercase().as_str() {
        "int" | "integer" => Ok(ColumnType::Int),
        "float" | "double" | "real" => Ok(ColumnType::Float),
        "str" | "string" | "text" => Ok(ColumnType::Str),
        other => Err(WireError::new(
            ErrorCode::MalformedRequest,
            format!("unknown column type {other:?} (expected int, float or str)"),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correction_mapping_covers_every_kind() {
        for kind in EstimatorKind::all() {
            let method = correction_for(kind);
            match kind {
                EstimatorKind::Policy => assert_eq!(method, CorrectionMethod::Auto),
                EstimatorKind::Naive => assert_eq!(method, CorrectionMethod::Naive),
                EstimatorKind::Frequency => assert_eq!(method, CorrectionMethod::Frequency),
                EstimatorKind::Bucket => assert_eq!(method, CorrectionMethod::Bucket),
                EstimatorKind::MonteCarlo(cfg) => {
                    assert_eq!(method, CorrectionMethod::MonteCarlo(cfg))
                }
            }
        }
    }

    #[test]
    fn column_types_parse_with_aliases() {
        assert_eq!(parse_column_type("int").unwrap(), ColumnType::Int);
        assert_eq!(parse_column_type("Float").unwrap(), ColumnType::Float);
        assert_eq!(parse_column_type("STRING").unwrap(), ColumnType::Str);
        assert!(parse_column_type("blob").is_err());
    }

    #[test]
    fn zero_frame_bound_falls_back_to_the_default() {
        let service = Service::new(Catalog::new(), 0);
        assert_eq!(service.max_frame_bytes(), DEFAULT_MAX_FRAME_BYTES);
        let service = Service::new(Catalog::new(), 1024);
        assert_eq!(service.max_frame_bytes(), 1024);
    }
}
