//! The wire protocol: typed request/response structs shared by the server,
//! the `uu-client` binary, the integration tests and the benches.
//!
//! Framing is **one JSON object per line** in each direction. A client sends
//! a request line, the server answers with exactly one response line; the
//! connection then accepts the next request (errors are responses, never
//! connection drops). Every response carries `"ok"`; failures carry a
//! structured [`WireError`] with a stable machine-readable code — an unknown
//! estimator name, for instance, answers with code `unknown_estimator` plus
//! the full accepted-names list rather than killing the session.
//!
//! Numbers survive the wire bit-for-bit (see [`crate::json`]), which is what
//! lets the parity tests compare server answers against direct
//! [`uu_query::catalog::Catalog`] calls with `==`, not tolerances.

use crate::json::{parse, Json, JsonError};
use uu_core::engine::{EstimatorKind, NamedEstimate, UnknownEstimator};
use uu_core::recommend::Recommendation;
use uu_query::exec::{ExecError, QueryResult};
use uu_query::value::Value;

/// Protocol revision; bumped on incompatible changes. Servers echo it in
/// `stats` responses. Revision 2 added named server-side sessions, prepared
/// queries, `server_info`, per-session counters in `stats`, and the
/// `frame_too_large` error code. Revision 3 added the columnar-projection
/// counters (`projection` builds/reuses/bytes) to `stats`. Revision 4 added
/// the connection-layer counters (`conn` open/peak/frames/bytes/reaps/
/// backpressure/backend) to `stats`. Revision 5 added the `append_stream`
/// verb with its `appended` response and the incremental-maintenance
/// counters (`incremental` batches/rows/merges/refreezes/fallbacks) to
/// `stats`. Revision 7 added the durability layer: the `checkpoint` verb
/// with its `checkpointed` response, the `storage` counter block
/// (WAL/checkpoint/recovery) in `stats`, the `storage` error code, and the
/// `data_dir`/`durability`/`last_checkpoint_age_ms` fields in `server_info`.
pub const PROTOCOL_VERSION: u64 = 7;

/// Decode failure for a request or response line.
#[derive(Debug, Clone, PartialEq)]
pub struct ProtoError(pub String);

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "protocol error: {}", self.0)
    }
}

impl std::error::Error for ProtoError {}

impl From<JsonError> for ProtoError {
    fn from(e: JsonError) -> Self {
        ProtoError(e.to_string())
    }
}

fn missing(field: &str) -> ProtoError {
    ProtoError(format!("missing or mistyped field {field:?}"))
}

fn req_str(obj: &Json, field: &str) -> Result<String, ProtoError> {
    obj.get(field)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| missing(field))
}

fn req_str_arr(obj: &Json, field: &str) -> Result<Vec<String>, ProtoError> {
    obj.get(field)
        .and_then(Json::as_arr)
        .ok_or_else(|| missing(field))?
        .iter()
        .map(|v| v.as_str().map(str::to_string))
        .collect::<Option<Vec<_>>>()
        .ok_or_else(|| missing(field))
}

fn opt_bool(obj: &Json, field: &str, default: bool) -> Result<bool, ProtoError> {
    match obj.get(field) {
        None | Some(Json::Null) => Ok(default),
        Some(v) => v.as_bool().ok_or_else(|| missing(field)),
    }
}

fn opt_f64(obj: &Json, field: &str) -> Result<Option<f64>, ProtoError> {
    match obj.get(field) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v.as_f64_lossless().map(Some).ok_or_else(|| missing(field)),
    }
}

fn req_f64(obj: &Json, field: &str) -> Result<f64, ProtoError> {
    obj.get(field)
        .and_then(Json::as_f64_lossless)
        .ok_or_else(|| missing(field))
}

fn req_u64(obj: &Json, field: &str) -> Result<u64, ProtoError> {
    obj.get(field)
        .and_then(Json::as_u64)
        .ok_or_else(|| missing(field))
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

/// A `query` request: SQL plus estimator names.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryRequest {
    /// The SQL text (`SELECT <agg> FROM <table> [WHERE …] [GROUP BY …]`).
    pub sql: String,
    /// Estimator names, resolved via `EstimatorKind::by_name`. The first is
    /// the primary correction applied to the aggregate; every name also
    /// contributes a per-estimator Δ in the response. Empty means "no
    /// correction" (closed-world answer only).
    pub estimators: Vec<String>,
    /// Route through the catalog's profile cache (default). `false` forces
    /// the uncached execution path (statistics rebuilt from the table).
    pub cached: bool,
    /// Capture a per-stage span tree for this request and return it in the
    /// reply's `trace` field (protocol v6; default off).
    pub trace: bool,
}

/// A `load_csv` admin request: create (or extend) a table from an
/// RFC-4180 observation log.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadCsvRequest {
    /// Table name to register (or extend when `append`).
    pub table: String,
    /// Schema columns as `(name, type)` with type one of `int`/`float`/`str`.
    pub columns: Vec<(String, String)>,
    /// Column holding the entity identity.
    pub entity_column: String,
    /// CSV column holding the observing source id.
    pub source_column: String,
    /// The CSV document (header row + observation rows).
    pub csv: String,
    /// Extend an existing table instead of requiring a fresh name.
    pub append: bool,
}

/// One client request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Execute a query.
    Query(QueryRequest),
    /// Load observations into the catalog.
    LoadCsv(LoadCsvRequest),
    /// Append an observation batch to an existing table through the
    /// incremental-maintenance path: cached projections grow in place,
    /// sort permutations absorb the delta by merge, and cached profile
    /// snapshots re-freeze instead of being evicted. The table's schema is
    /// fixed, so unlike `load_csv` no column list travels with the batch.
    AppendStream {
        /// Target table (must already be registered).
        table: String,
        /// CSV column holding the observing source id.
        source_column: String,
        /// The CSV document (header row + observation rows).
        csv: String,
    },
    /// Pre-warm the profile cache for a query.
    Warm {
        /// The SQL whose selection should be captured.
        sql: String,
    },
    /// Open a named server-side session with a pinned estimator selection.
    /// Sessions are addressed by name from any connection and hold the
    /// session's prepared queries.
    SessionOpen {
        /// Session name (unique among open sessions).
        name: String,
        /// Estimator names pinned for the session's lifetime; the first is
        /// the primary correction for every `execute_prepared`.
        estimators: Vec<String>,
    },
    /// Close a named session, dropping its prepared queries.
    SessionClose {
        /// Session name.
        name: String,
    },
    /// Parse and freeze a query inside a named session: the SQL is parsed
    /// once and its selection snapshots are captured, so repeated
    /// `execute_prepared` calls skip the parser entirely.
    Prepare {
        /// Owning session.
        session: String,
        /// Statement name (unique within the session).
        name: String,
        /// The SQL text to freeze.
        sql: String,
    },
    /// Execute a prepared query; answers with the same `query` response
    /// shape as [`Request::Query`].
    ExecutePrepared {
        /// Owning session.
        session: String,
        /// Statement name.
        name: String,
    },
    /// Drop one prepared query from a session.
    Deallocate {
        /// Owning session.
        session: String,
        /// Statement name.
        name: String,
    },
    /// Server identity: version, uptime, active sessions, enabled fronts.
    ServerInfo,
    /// Server / cache / executor counters.
    Stats,
    /// Latency-histogram summary: p50/p90/p99/max per `(verb, stage)`
    /// (protocol v6). The full bucket data is served by the Prometheus
    /// endpoint; this verb carries the quantile digest.
    Metrics,
    /// Liveness probe.
    Ping,
    /// Force a durability checkpoint: snapshot every table (rows, lineage,
    /// cached selections) to the data directory and truncate the
    /// observation WAL (protocol v7). Errors with code `storage` when the
    /// server runs without `--data-dir`.
    Checkpoint,
    /// Stop accepting connections and exit once drained. A durable server
    /// flushes its WAL and writes a final checkpoint first, so a restart
    /// replays nothing.
    Shutdown,
}

impl Request {
    /// Renders the request as one wire line (no trailing newline).
    pub fn encode(&self) -> String {
        let json = match self {
            Request::Query(q) => Json::obj([
                ("op", Json::Str("query".into())),
                ("sql", Json::Str(q.sql.clone())),
                (
                    "estimators",
                    Json::Arr(
                        q.estimators
                            .iter()
                            .map(|name| Json::Str(name.clone()))
                            .collect(),
                    ),
                ),
                ("cached", Json::Bool(q.cached)),
                ("trace", Json::Bool(q.trace)),
            ]),
            Request::LoadCsv(l) => Json::obj([
                ("op", Json::Str("load_csv".into())),
                ("table", Json::Str(l.table.clone())),
                (
                    "columns",
                    Json::Arr(
                        l.columns
                            .iter()
                            .map(|(name, ty)| {
                                Json::Arr(vec![Json::Str(name.clone()), Json::Str(ty.clone())])
                            })
                            .collect(),
                    ),
                ),
                ("entity_column", Json::Str(l.entity_column.clone())),
                ("source_column", Json::Str(l.source_column.clone())),
                ("append", Json::Bool(l.append)),
                ("csv", Json::Str(l.csv.clone())),
            ]),
            Request::AppendStream {
                table,
                source_column,
                csv,
            } => Json::obj([
                ("op", Json::Str("append_stream".into())),
                ("table", Json::Str(table.clone())),
                ("source_column", Json::Str(source_column.clone())),
                ("csv", Json::Str(csv.clone())),
            ]),
            Request::Warm { sql } => Json::obj([
                ("op", Json::Str("warm".into())),
                ("sql", Json::Str(sql.clone())),
            ]),
            Request::SessionOpen { name, estimators } => Json::obj([
                ("op", Json::Str("session_open".into())),
                ("name", Json::Str(name.clone())),
                (
                    "estimators",
                    Json::Arr(estimators.iter().map(|e| Json::Str(e.clone())).collect()),
                ),
            ]),
            Request::SessionClose { name } => Json::obj([
                ("op", Json::Str("session_close".into())),
                ("name", Json::Str(name.clone())),
            ]),
            Request::Prepare { session, name, sql } => Json::obj([
                ("op", Json::Str("prepare".into())),
                ("session", Json::Str(session.clone())),
                ("name", Json::Str(name.clone())),
                ("sql", Json::Str(sql.clone())),
            ]),
            Request::ExecutePrepared { session, name } => Json::obj([
                ("op", Json::Str("execute_prepared".into())),
                ("session", Json::Str(session.clone())),
                ("name", Json::Str(name.clone())),
            ]),
            Request::Deallocate { session, name } => Json::obj([
                ("op", Json::Str("deallocate".into())),
                ("session", Json::Str(session.clone())),
                ("name", Json::Str(name.clone())),
            ]),
            Request::ServerInfo => Json::obj([("op", Json::Str("server_info".into()))]),
            Request::Stats => Json::obj([("op", Json::Str("stats".into()))]),
            Request::Metrics => Json::obj([("op", Json::Str("metrics".into()))]),
            Request::Ping => Json::obj([("op", Json::Str("ping".into()))]),
            Request::Checkpoint => Json::obj([("op", Json::Str("checkpoint".into()))]),
            Request::Shutdown => Json::obj([("op", Json::Str("shutdown".into()))]),
        };
        json.render()
    }

    /// Parses one wire line into a request.
    pub fn decode(line: &str) -> Result<Request, ProtoError> {
        let json = parse(line)?;
        if !matches!(json, Json::Obj(_)) {
            return Err(ProtoError("request must be a JSON object".into()));
        }
        let op = req_str(&json, "op")?;
        match op.as_str() {
            "query" => {
                let estimators = match json.get("estimators") {
                    None | Some(Json::Null) => Vec::new(),
                    Some(v) => v
                        .as_arr()
                        .ok_or_else(|| missing("estimators"))?
                        .iter()
                        .map(|e| e.as_str().map(str::to_string))
                        .collect::<Option<Vec<_>>>()
                        .ok_or_else(|| missing("estimators"))?,
                };
                Ok(Request::Query(QueryRequest {
                    sql: req_str(&json, "sql")?,
                    estimators,
                    cached: opt_bool(&json, "cached", true)?,
                    trace: opt_bool(&json, "trace", false)?,
                }))
            }
            "load_csv" => {
                let columns = json
                    .get("columns")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| missing("columns"))?
                    .iter()
                    .map(|pair| {
                        let pair = pair.as_arr()?;
                        match pair {
                            [name, ty] => {
                                Some((name.as_str()?.to_string(), ty.as_str()?.to_string()))
                            }
                            _ => None,
                        }
                    })
                    .collect::<Option<Vec<_>>>()
                    .ok_or_else(|| missing("columns"))?;
                Ok(Request::LoadCsv(LoadCsvRequest {
                    table: req_str(&json, "table")?,
                    columns,
                    entity_column: req_str(&json, "entity_column")?,
                    source_column: req_str(&json, "source_column")?,
                    csv: req_str(&json, "csv")?,
                    append: opt_bool(&json, "append", false)?,
                }))
            }
            "append_stream" => Ok(Request::AppendStream {
                table: req_str(&json, "table")?,
                source_column: req_str(&json, "source_column")?,
                csv: req_str(&json, "csv")?,
            }),
            "warm" => Ok(Request::Warm {
                sql: req_str(&json, "sql")?,
            }),
            "session_open" => {
                let estimators = match json.get("estimators") {
                    None | Some(Json::Null) => Vec::new(),
                    Some(v) => v
                        .as_arr()
                        .ok_or_else(|| missing("estimators"))?
                        .iter()
                        .map(|e| e.as_str().map(str::to_string))
                        .collect::<Option<Vec<_>>>()
                        .ok_or_else(|| missing("estimators"))?,
                };
                Ok(Request::SessionOpen {
                    name: req_str(&json, "name")?,
                    estimators,
                })
            }
            "session_close" => Ok(Request::SessionClose {
                name: req_str(&json, "name")?,
            }),
            "prepare" => Ok(Request::Prepare {
                session: req_str(&json, "session")?,
                name: req_str(&json, "name")?,
                sql: req_str(&json, "sql")?,
            }),
            "execute_prepared" => Ok(Request::ExecutePrepared {
                session: req_str(&json, "session")?,
                name: req_str(&json, "name")?,
            }),
            "deallocate" => Ok(Request::Deallocate {
                session: req_str(&json, "session")?,
                name: req_str(&json, "name")?,
            }),
            "server_info" => Ok(Request::ServerInfo),
            "stats" => Ok(Request::Stats),
            "metrics" => Ok(Request::Metrics),
            "ping" => Ok(Request::Ping),
            "checkpoint" => Ok(Request::Checkpoint),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(ProtoError(format!("unknown op {other:?}"))),
        }
    }
}

// ---------------------------------------------------------------------------
// Errors on the wire
// ---------------------------------------------------------------------------

/// Stable machine-readable error codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request line failed to parse or decode.
    MalformedRequest,
    /// The SQL text failed to parse.
    Parse,
    /// The referenced table is not registered.
    UnknownTable,
    /// An estimator name failed `EstimatorKind::by_name`.
    UnknownEstimator,
    /// Schema/column/predicate problem.
    Table,
    /// CSV structure or field problem.
    Csv,
    /// `load_csv` without `append` over an existing table.
    DuplicateTable,
    /// The named server-side session does not exist.
    UnknownSession,
    /// `session_open` with a name that is already open.
    DuplicateSession,
    /// The named prepared query does not exist in the session.
    UnknownPrepared,
    /// `prepare` with a statement name that already exists in the session.
    DuplicatePrepared,
    /// An inbound frame exceeded the server's frame-size limit.
    FrameTooLarge,
    /// A server-side resource cap was hit (open sessions, prepared
    /// statements per session).
    ResourceLimit,
    /// A durability-layer failure: WAL append or checkpoint I/O, or a
    /// `checkpoint` request against a server running without `--data-dir`
    /// (protocol v7).
    Storage,
    /// Anything else (a bug if ever observed).
    Internal,
}

impl ErrorCode {
    /// The wire spelling.
    pub const fn as_str(self) -> &'static str {
        match self {
            ErrorCode::MalformedRequest => "malformed_request",
            ErrorCode::Parse => "parse",
            ErrorCode::UnknownTable => "unknown_table",
            ErrorCode::UnknownEstimator => "unknown_estimator",
            ErrorCode::Table => "table",
            ErrorCode::Csv => "csv",
            ErrorCode::DuplicateTable => "duplicate_table",
            ErrorCode::UnknownSession => "unknown_session",
            ErrorCode::DuplicateSession => "duplicate_session",
            ErrorCode::UnknownPrepared => "unknown_prepared",
            ErrorCode::DuplicatePrepared => "duplicate_prepared",
            ErrorCode::FrameTooLarge => "frame_too_large",
            ErrorCode::ResourceLimit => "resource_limit",
            ErrorCode::Storage => "storage",
            ErrorCode::Internal => "internal",
        }
    }

    /// Every code, for exhaustive round-trip tests.
    pub const fn all() -> [ErrorCode; 15] {
        [
            ErrorCode::MalformedRequest,
            ErrorCode::Parse,
            ErrorCode::UnknownTable,
            ErrorCode::UnknownEstimator,
            ErrorCode::Table,
            ErrorCode::Csv,
            ErrorCode::DuplicateTable,
            ErrorCode::UnknownSession,
            ErrorCode::DuplicateSession,
            ErrorCode::UnknownPrepared,
            ErrorCode::DuplicatePrepared,
            ErrorCode::FrameTooLarge,
            ErrorCode::ResourceLimit,
            ErrorCode::Storage,
            ErrorCode::Internal,
        ]
    }

    /// Parses the wire spelling.
    pub fn parse(s: &str) -> Option<ErrorCode> {
        Some(match s {
            "malformed_request" => ErrorCode::MalformedRequest,
            "parse" => ErrorCode::Parse,
            "unknown_table" => ErrorCode::UnknownTable,
            "unknown_estimator" => ErrorCode::UnknownEstimator,
            "table" => ErrorCode::Table,
            "csv" => ErrorCode::Csv,
            "duplicate_table" => ErrorCode::DuplicateTable,
            "unknown_session" => ErrorCode::UnknownSession,
            "duplicate_session" => ErrorCode::DuplicateSession,
            "unknown_prepared" => ErrorCode::UnknownPrepared,
            "duplicate_prepared" => ErrorCode::DuplicatePrepared,
            "frame_too_large" => ErrorCode::FrameTooLarge,
            "resource_limit" => ErrorCode::ResourceLimit,
            "storage" => ErrorCode::Storage,
            "internal" => ErrorCode::Internal,
            _ => return None,
        })
    }
}

/// A structured error response. The connection stays usable after any error.
#[derive(Debug, Clone, PartialEq)]
pub struct WireError {
    /// Machine-readable code.
    pub code: ErrorCode,
    /// Human-readable description.
    pub message: String,
    /// For [`ErrorCode::UnknownEstimator`]: every accepted name.
    pub accepted: Vec<String>,
}

impl WireError {
    /// A plain error with no accepted-names list.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        WireError {
            code,
            message: message.into(),
            accepted: Vec::new(),
        }
    }

    /// The structured form of an `UnknownEstimator` failure: code plus the
    /// full accepted-names list from the registry.
    pub fn unknown_estimator(e: &UnknownEstimator) -> Self {
        WireError {
            code: ErrorCode::UnknownEstimator,
            message: e.to_string(),
            accepted: EstimatorKind::all()
                .iter()
                .map(|k| k.name().to_string())
                .collect(),
        }
    }

    /// Lowers a query-execution error onto the wire codes.
    pub fn from_exec(e: &ExecError) -> Self {
        let code = match e {
            ExecError::Parse(_) => ErrorCode::Parse,
            ExecError::UnknownTable(_) => ErrorCode::UnknownTable,
            ExecError::Table(_) => ErrorCode::Table,
            ExecError::GroupedQuery | ExecError::TableNameMismatch { .. } => ErrorCode::Internal,
        };
        WireError::new(code, e.to_string())
    }
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

/// A group key on the wire, type-tagged so numeric values round-trip without
/// int/float ambiguity.
#[derive(Debug, Clone, PartialEq)]
pub struct WireValue(pub Value);

impl WireValue {
    fn to_json(&self) -> Json {
        match &self.0 {
            Value::Null => Json::Null,
            Value::Int(i) => Json::obj([("t", Json::Str("int".into())), ("v", Json::Int(*i))]),
            Value::Float(f) => {
                Json::obj([("t", Json::Str("float".into())), ("v", Json::from_f64(*f))])
            }
            Value::Str(s) => {
                Json::obj([("t", Json::Str("str".into())), ("v", Json::Str(s.clone()))])
            }
        }
    }

    fn from_json(json: &Json) -> Result<WireValue, ProtoError> {
        if json.is_null() {
            return Ok(WireValue(Value::Null));
        }
        let tag = req_str(json, "t")?;
        let v = json.get("v").ok_or_else(|| missing("v"))?;
        let value = match tag.as_str() {
            "int" => Value::Int(v.as_i64().ok_or_else(|| missing("v"))?),
            "float" => Value::Float(v.as_f64_lossless().ok_or_else(|| missing("v"))?),
            "str" => Value::Str(v.as_str().ok_or_else(|| missing("v"))?.to_string()),
            other => return Err(ProtoError(format!("unknown value tag {other:?}"))),
        };
        Ok(WireValue(value))
    }
}

/// One estimator's Δ within a query response.
#[derive(Debug, Clone, PartialEq)]
pub struct WireEstimate {
    /// Registry name.
    pub name: String,
    /// The SUM-impact estimate `Δ̂` (`None` when undefined for the sample).
    pub delta: Option<f64>,
    /// Population-richness estimate `N̂`.
    pub n_hat: Option<f64>,
    /// `φ_K + Δ̂` over the universe's observed sum.
    pub corrected: Option<f64>,
}

impl WireEstimate {
    /// Converts a session result.
    pub fn from_named(e: &NamedEstimate) -> Self {
        WireEstimate {
            name: e.name.to_string(),
            delta: e.delta.delta,
            n_hat: e.delta.n_hat,
            corrected: e.corrected,
        }
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("name", Json::Str(self.name.clone())),
            ("delta", Json::from_opt_f64(self.delta)),
            ("n_hat", Json::from_opt_f64(self.n_hat)),
            ("corrected", Json::from_opt_f64(self.corrected)),
        ])
    }

    fn from_json(json: &Json) -> Result<Self, ProtoError> {
        Ok(WireEstimate {
            name: req_str(json, "name")?,
            delta: opt_f64(json, "delta")?,
            n_hat: opt_f64(json, "n_hat")?,
            corrected: opt_f64(json, "corrected")?,
        })
    }
}

/// §6.5 diagnostics on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct WireDiagnostics {
    /// Good–Turing coverage `Ĉ`.
    pub coverage: Option<f64>,
    /// Contributing (non-empty) sources.
    pub contributing_sources: u64,
    /// Largest single-source share.
    pub max_source_share: Option<f64>,
    /// Gini coefficient of source contributions.
    pub source_gini: Option<f64>,
}

/// §5 MIN/MAX trust report on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct WireExtreme {
    /// Whether the observed extreme is endorsed.
    pub trusted: bool,
    /// The observed extreme.
    pub observed: f64,
    /// Estimated missing entities in the extreme bucket (untrusted only).
    pub estimated_missing: Option<f64>,
}

/// One estimation universe's full answer (mirrors
/// [`uu_query::exec::QueryResult`] plus the per-estimator Δs).
#[derive(Debug, Clone, PartialEq)]
pub struct WireResult {
    /// The executed query, pretty-printed (grouped results name the group).
    pub query: String,
    /// Closed-world answer.
    pub observed: f64,
    /// Corrected answer (`None` when withheld/undefined/not requested).
    pub corrected: Option<f64>,
    /// Name of the estimator behind `corrected`.
    pub method: String,
    /// Population richness `N̂`.
    pub n_hat: Option<f64>,
    /// §4 upper bound (SUM only).
    pub upper_bound: Option<f64>,
    /// §5 trust report (MIN/MAX only).
    pub extreme: Option<WireExtreme>,
    /// §6.5 diagnostics.
    pub diagnostics: WireDiagnostics,
    /// §6.5 recommendation (`bucket` / `monte-carlo` / `collect-more-data`).
    pub recommendation: String,
    /// Per-estimator SUM-impact Δs over this universe, in request order.
    pub estimates: Vec<WireEstimate>,
}

/// The wire spelling of a recommendation.
pub fn recommendation_name(r: Recommendation) -> &'static str {
    match r {
        Recommendation::CollectMoreData => "collect-more-data",
        Recommendation::Bucket => "bucket",
        Recommendation::MonteCarlo => "monte-carlo",
    }
}

impl WireResult {
    /// Converts an executor result plus the session's per-estimator Δs.
    pub fn from_result(r: &QueryResult, estimates: Vec<WireEstimate>) -> Self {
        WireResult {
            query: r.query.clone(),
            observed: r.observed,
            corrected: r.corrected,
            method: r.method.to_string(),
            n_hat: r.n_hat,
            upper_bound: r.upper_bound,
            extreme: r.extreme.map(|e| WireExtreme {
                trusted: e.is_trusted(),
                observed: e.observed(),
                estimated_missing: match e {
                    uu_core::aggregates::ExtremeReport::Trusted(_) => None,
                    uu_core::aggregates::ExtremeReport::Untrusted {
                        estimated_missing, ..
                    } => estimated_missing,
                },
            }),
            diagnostics: WireDiagnostics {
                coverage: r.diagnostics.coverage,
                contributing_sources: r.diagnostics.contributing_sources as u64,
                max_source_share: r.diagnostics.max_source_share,
                source_gini: r.diagnostics.source_gini,
            },
            recommendation: recommendation_name(r.recommendation).to_string(),
            estimates,
        }
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("query", Json::Str(self.query.clone())),
            ("observed", Json::from_f64(self.observed)),
            ("corrected", Json::from_opt_f64(self.corrected)),
            ("method", Json::Str(self.method.clone())),
            ("n_hat", Json::from_opt_f64(self.n_hat)),
            ("upper_bound", Json::from_opt_f64(self.upper_bound)),
            (
                "extreme",
                match &self.extreme {
                    None => Json::Null,
                    Some(e) => Json::obj([
                        ("trusted", Json::Bool(e.trusted)),
                        ("observed", Json::from_f64(e.observed)),
                        ("estimated_missing", Json::from_opt_f64(e.estimated_missing)),
                    ]),
                },
            ),
            (
                "diagnostics",
                Json::obj([
                    ("coverage", Json::from_opt_f64(self.diagnostics.coverage)),
                    (
                        "contributing_sources",
                        Json::Int(self.diagnostics.contributing_sources as i64),
                    ),
                    (
                        "max_source_share",
                        Json::from_opt_f64(self.diagnostics.max_source_share),
                    ),
                    (
                        "source_gini",
                        Json::from_opt_f64(self.diagnostics.source_gini),
                    ),
                ]),
            ),
            ("recommendation", Json::Str(self.recommendation.clone())),
            (
                "estimates",
                Json::Arr(self.estimates.iter().map(WireEstimate::to_json).collect()),
            ),
        ])
    }

    fn from_json(json: &Json) -> Result<Self, ProtoError> {
        let diagnostics = json
            .get("diagnostics")
            .ok_or_else(|| missing("diagnostics"))?;
        let extreme = match json.get("extreme") {
            None | Some(Json::Null) => None,
            Some(e) => Some(WireExtreme {
                trusted: e
                    .get("trusted")
                    .and_then(Json::as_bool)
                    .ok_or_else(|| missing("trusted"))?,
                observed: req_f64(e, "observed")?,
                estimated_missing: opt_f64(e, "estimated_missing")?,
            }),
        };
        Ok(WireResult {
            query: req_str(json, "query")?,
            observed: req_f64(json, "observed")?,
            corrected: opt_f64(json, "corrected")?,
            method: req_str(json, "method")?,
            n_hat: opt_f64(json, "n_hat")?,
            upper_bound: opt_f64(json, "upper_bound")?,
            extreme,
            diagnostics: WireDiagnostics {
                coverage: opt_f64(diagnostics, "coverage")?,
                contributing_sources: req_u64(diagnostics, "contributing_sources")?,
                max_source_share: opt_f64(diagnostics, "max_source_share")?,
                source_gini: opt_f64(diagnostics, "source_gini")?,
            },
            recommendation: req_str(json, "recommendation")?,
            estimates: json
                .get("estimates")
                .and_then(Json::as_arr)
                .ok_or_else(|| missing("estimates"))?
                .iter()
                .map(WireEstimate::from_json)
                .collect::<Result<Vec<_>, _>>()?,
        })
    }

    /// Canonical single-line rendering — handy for bit-for-bit comparisons
    /// in tests (NaN-bearing results compare equal by text).
    pub fn canonical(&self) -> String {
        self.to_json().render()
    }
}

/// One group row of a query response.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupReply {
    /// Group key (`Null` for ungrouped queries).
    pub key: WireValue,
    /// The group's answer.
    pub result: WireResult,
}

/// One node of a wire-encoded span tree (protocol v6).
#[derive(Debug, Clone, PartialEq)]
pub struct WireSpan {
    /// Stage name (`uu_core::obs::Stage::as_str`).
    pub stage: String,
    /// Optional fine-grained label (e.g. the estimator name inside the
    /// fan-out).
    pub label: Option<String>,
    /// Index of the parent span in the reply's span list; `None` for roots.
    pub parent: Option<u64>,
    /// Start offset from the trace epoch, nanoseconds.
    pub start_ns: u64,
    /// Span duration, nanoseconds.
    pub dur_ns: u64,
}

impl WireSpan {
    pub(crate) fn to_json(&self) -> Json {
        let mut pairs = vec![("stage", Json::Str(self.stage.clone()))];
        if let Some(label) = &self.label {
            pairs.push(("label", Json::Str(label.clone())));
        }
        pairs.push((
            "parent",
            match self.parent {
                Some(p) => Json::Int(p as i64),
                None => Json::Null,
            },
        ));
        pairs.push(("start_ns", Json::Int(self.start_ns as i64)));
        pairs.push(("dur_ns", Json::Int(self.dur_ns as i64)));
        Json::obj(pairs)
    }

    fn from_json(json: &Json) -> Result<WireSpan, ProtoError> {
        let label = match json.get("label") {
            None | Some(Json::Null) => None,
            Some(v) => Some(
                v.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| missing("label"))?,
            ),
        };
        let parent = match json.get("parent") {
            None | Some(Json::Null) => None,
            Some(v) => Some(v.as_u64().ok_or_else(|| missing("parent"))?),
        };
        Ok(WireSpan {
            stage: req_str(json, "stage")?,
            label,
            parent,
            start_ns: req_u64(json, "start_ns")?,
            dur_ns: req_u64(json, "dur_ns")?,
        })
    }
}

/// A full `query` response.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryReply {
    /// Echo of the request SQL.
    pub sql: String,
    /// Whether the selection came out of the profile cache.
    pub cache_hit: bool,
    /// Server-side execution time in microseconds.
    pub elapsed_us: u64,
    /// Whether the query had a `GROUP BY` (ungrouped answers still arrive as
    /// one `Null`-keyed group).
    pub grouped: bool,
    /// Per-universe answers, in deterministic group order.
    pub groups: Vec<GroupReply>,
    /// The captured span tree, present only when the request asked for
    /// `"trace":true` (protocol v6). Spans are in open order; `parent`
    /// indices point into this list.
    pub trace: Option<Vec<WireSpan>>,
}

impl QueryReply {
    /// The single result of an ungrouped reply.
    pub fn single(&self) -> Option<&WireResult> {
        if self.grouped {
            None
        } else {
            self.groups.first().map(|g| &g.result)
        }
    }
}

/// Cache counters in a `stats` response.
#[derive(Debug, Clone, PartialEq)]
pub struct WireCacheStats {
    /// Lookup hits.
    pub hits: u64,
    /// Lookup misses.
    pub misses: u64,
    /// Insertions.
    pub insertions: u64,
    /// Capacity / byte-budget evictions.
    pub evictions: u64,
    /// Explicit invalidations.
    pub invalidations: u64,
    /// TTL expirations.
    pub expirations: u64,
    /// Live entries.
    pub len: u64,
    /// Accounted bytes of live entries.
    pub bytes: u64,
    /// Configured entry capacity.
    pub capacity: u64,
    /// Configured byte budget, if any.
    pub byte_budget: Option<f64>,
    /// Configured TTL in milliseconds, if any.
    pub ttl_ms: Option<f64>,
}

/// Executor counters in a `stats` response.
#[derive(Debug, Clone, PartialEq)]
pub struct WireExecStats {
    /// Worker budget.
    pub threads: u64,
    /// Regions entered.
    pub regions: u64,
    /// Regions that spawned helpers.
    pub parallel_regions: u64,
    /// Tasks executed.
    pub tasks: u64,
    /// Steal operations.
    pub steals: u64,
    /// Peak live workers.
    pub peak_workers: u64,
}

/// Columnar-projection counters in a `stats` response, aggregated over every
/// registered table.
#[derive(Debug, Clone, PartialEq)]
pub struct WireProjectionStats {
    /// Projections materialized from row storage.
    pub builds: u64,
    /// Requests served by an already-current projection.
    pub reuses: u64,
    /// Bytes held by currently-valid projections (stale ones count zero).
    pub bytes: u64,
}

/// Incremental-maintenance counters in a `stats` response, aggregated over
/// every `append_stream` / appending `load_csv` served since start.
#[derive(Debug, Clone, PartialEq)]
pub struct WireIncrementalStats {
    /// Append batches accepted.
    pub delta_batches: u64,
    /// Observations ingested through the append path.
    pub rows_appended: u64,
    /// Cached sort permutations extended by merge (not re-sorted).
    pub permutation_merges: u64,
    /// Cached selections re-frozen in place instead of evicted.
    pub snapshots_refrozen: u64,
    /// Cached selections that could not be re-frozen and fell back to
    /// drop-and-rebuild (incremental off, stale version, touched group…).
    pub fallback_rebuilds: u64,
}

/// Durability-layer counters in a `stats` response (protocol v7). All
/// zeros on a server running without `--data-dir`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WireStorageStats {
    /// WAL records appended since startup.
    pub wal_records: u64,
    /// Framed WAL bytes appended since startup.
    pub wal_bytes: u64,
    /// `fsync`/`fdatasync` calls issued (WAL + snapshot files).
    pub fsyncs: u64,
    /// Checkpoints completed.
    pub checkpoints: u64,
    /// Tables restored from snapshots at startup.
    pub recovered_tables: u64,
    /// WAL records replayed at startup.
    pub replayed_records: u64,
    /// Torn WAL tail bytes truncated at startup.
    pub truncated_tail_bytes: u64,
}

/// Connection-layer (reactor) counters in a `stats` response.
#[derive(Debug, Clone, PartialEq)]
pub struct WireConnStats {
    /// Connections currently open.
    pub open: u64,
    /// High-water mark of concurrently open connections.
    pub peak_open: u64,
    /// Complete inbound frames assembled (JSON lines + pgwire messages).
    pub frames_in: u64,
    /// Outbound replies queued.
    pub frames_out: u64,
    /// Bytes read off sockets.
    pub bytes_in: u64,
    /// Bytes written to sockets.
    pub bytes_out: u64,
    /// Connections closed by the idle-timeout reaper.
    pub idle_reaped: u64,
    /// Write-backpressure trips (reads paused at the high-water mark).
    pub backpressure: u64,
    /// High-water mark of frames waiting in the worker queue (protocol v6).
    pub queue_depth_peak: u64,
    /// Total microseconds frames spent queued before a worker picked them
    /// up (protocol v6).
    pub queue_wait_us_total: u64,
    /// Largest single queue wait in microseconds (protocol v6).
    pub queue_wait_us_max: u64,
    /// The readiness backend the reactor selected (`epoll` or `poll`).
    pub backend: String,
}

/// One named session's counters in a `stats` response.
#[derive(Debug, Clone, PartialEq)]
pub struct WireSessionStats {
    /// Session name.
    pub name: String,
    /// Pinned estimator names, in request order.
    pub estimators: Vec<String>,
    /// Prepared queries currently held.
    pub prepared: u64,
    /// `execute_prepared` calls served.
    pub executes: u64,
    /// Executions answered straight from a statement's frozen snapshots
    /// (no profile-cache lookup at all).
    pub frozen_hits: u64,
    /// Milliseconds since the session was opened.
    pub age_ms: u64,
}

/// A `stats` response.
#[derive(Debug, Clone, PartialEq)]
pub struct StatsReply {
    /// Protocol revision.
    pub protocol: u64,
    /// Registered tables, sorted.
    pub tables: Vec<String>,
    /// Connection-handler pool size.
    pub workers: u64,
    /// Connections accepted since start.
    pub connections: u64,
    /// Requests processed since start.
    pub requests: u64,
    /// Requests answered with an error.
    pub errors: u64,
    /// Milliseconds since the server started.
    pub uptime_ms: u64,
    /// Per-session counters for every open named session, sorted by name.
    pub sessions: Vec<WireSessionStats>,
    /// Profile-cache counters.
    pub cache: WireCacheStats,
    /// Columnar-projection counters.
    pub projection: WireProjectionStats,
    /// Shared-executor counters.
    pub exec: WireExecStats,
    /// Connection-layer (reactor) counters.
    pub conn: WireConnStats,
    /// Incremental-maintenance counters.
    pub incremental: WireIncrementalStats,
    /// Durability-layer counters (protocol v7; all zeros without
    /// `--data-dir`).
    pub storage: WireStorageStats,
}

/// One `(verb, stage)` latency digest in a `metrics` response
/// (protocol v6). Quantiles come from the merged log-bucketed histograms,
/// so they carry the bucket resolution (≈ √2), not exact order statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct WireStageMetrics {
    /// Protocol verb the durations were recorded under.
    pub verb: String,
    /// Pipeline stage name.
    pub stage: String,
    /// Number of recorded durations.
    pub count: u64,
    /// Median, microseconds.
    pub p50_us: f64,
    /// 90th percentile, microseconds.
    pub p90_us: f64,
    /// 99th percentile, microseconds.
    pub p99_us: f64,
    /// Largest recorded duration, microseconds.
    pub max_us: f64,
    /// Mean duration, microseconds.
    pub mean_us: f64,
}

impl WireStageMetrics {
    fn to_json(&self) -> Json {
        Json::obj([
            ("verb", Json::Str(self.verb.clone())),
            ("stage", Json::Str(self.stage.clone())),
            ("count", Json::Int(self.count as i64)),
            ("p50_us", Json::from_f64(self.p50_us)),
            ("p90_us", Json::from_f64(self.p90_us)),
            ("p99_us", Json::from_f64(self.p99_us)),
            ("max_us", Json::from_f64(self.max_us)),
            ("mean_us", Json::from_f64(self.mean_us)),
        ])
    }

    fn from_json(json: &Json) -> Result<WireStageMetrics, ProtoError> {
        Ok(WireStageMetrics {
            verb: req_str(json, "verb")?,
            stage: req_str(json, "stage")?,
            count: req_u64(json, "count")?,
            p50_us: req_f64(json, "p50_us")?,
            p90_us: req_f64(json, "p90_us")?,
            p99_us: req_f64(json, "p99_us")?,
            max_us: req_f64(json, "max_us")?,
            mean_us: req_f64(json, "mean_us")?,
        })
    }
}

/// A `metrics` response (protocol v6).
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsReply {
    /// Non-empty `(verb, stage)` digests, in stable verb-major order.
    pub entries: Vec<WireStageMetrics>,
}

/// A `server_info` response.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerInfoReply {
    /// Server (crate) version.
    pub version: String,
    /// Protocol revision.
    pub protocol: u64,
    /// Milliseconds since the server started.
    pub uptime_ms: u64,
    /// Open named sessions.
    pub active_sessions: u64,
    /// Enabled transport fronts (e.g. `json`, `pgwire`).
    pub fronts: Vec<String>,
    /// Connection-handler pool size.
    pub workers: u64,
    /// The durability data directory, when the server runs with
    /// `--data-dir` (protocol v7).
    pub data_dir: Option<String>,
    /// Durability mode: `off` without a data directory, else the fsync
    /// policy (`always`/`batch`/`off` — the latter meaning "WAL without
    /// fsync") (protocol v7).
    pub durability: String,
    /// Milliseconds since the last completed checkpoint; `None` when no
    /// checkpoint has run in this process (protocol v7).
    pub last_checkpoint_age_ms: Option<f64>,
}

/// One server response line.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Answer to [`Request::Query`].
    Query(QueryReply),
    /// Answer to [`Request::LoadCsv`].
    Loaded {
        /// Table written.
        table: String,
        /// Observations ingested by this request.
        observations: u64,
        /// Entities now in the table.
        entities: u64,
    },
    /// Answer to [`Request::AppendStream`]. An appending
    /// [`Request::LoadCsv`] rides the same server-side delta path but keeps
    /// answering with [`Response::Loaded`] for compatibility.
    Appended {
        /// Table extended.
        table: String,
        /// Observations ingested by this request.
        observations: u64,
        /// Entities now in the table.
        entities: u64,
        /// Cached selections re-frozen in place by this append.
        refrozen: u64,
        /// Whether the delta path ran (false means drop-and-rebuild
        /// fallback: incremental maintenance disabled for the table or via
        /// `UU_INCREMENTAL=0`).
        incremental: bool,
    },
    /// Answer to [`Request::Warm`].
    Warmed {
        /// Echo of the SQL.
        sql: String,
        /// Estimation universes captured.
        universes: u64,
        /// Whether the selection was already cached.
        already_cached: bool,
    },
    /// Answer to [`Request::SessionOpen`].
    SessionOpened {
        /// Session name.
        name: String,
        /// Pinned estimator names as resolved by the registry.
        estimators: Vec<String>,
    },
    /// Answer to [`Request::SessionClose`].
    SessionClosed {
        /// Session name.
        name: String,
        /// Prepared queries dropped with the session.
        prepared_dropped: u64,
    },
    /// Answer to [`Request::Prepare`].
    Prepared {
        /// Owning session.
        session: String,
        /// Statement name.
        name: String,
        /// Echo of the frozen SQL.
        sql: String,
        /// Estimation universes captured by the frozen selection.
        universes: u64,
        /// Whether the selection was already in the profile cache.
        already_cached: bool,
    },
    /// Answer to [`Request::Deallocate`].
    Deallocated {
        /// Owning session.
        session: String,
        /// Statement name.
        name: String,
    },
    /// Answer to [`Request::ServerInfo`].
    Info(ServerInfoReply),
    /// Answer to [`Request::Stats`] (boxed: the reply is by far the widest
    /// variant and would otherwise bloat every `Response`).
    Stats(Box<StatsReply>),
    /// Answer to [`Request::Metrics`] (protocol v6).
    Metrics(MetricsReply),
    /// Answer to [`Request::Ping`].
    Pong,
    /// Answer to [`Request::Checkpoint`] (protocol v7).
    Checkpointed {
        /// Tables snapshotted.
        tables: u64,
        /// Snapshot bytes written.
        bytes: u64,
    },
    /// Answer to [`Request::Shutdown`]; the server drains and exits.
    Bye,
    /// Any failure; the connection stays usable.
    Error(WireError),
}

impl Response {
    /// Renders the response as one wire line (no trailing newline).
    pub fn encode(&self) -> String {
        let json = match self {
            Response::Query(q) => {
                let mut pairs = vec![
                    ("ok", Json::Bool(true)),
                    ("op", Json::Str("query".into())),
                    ("sql", Json::Str(q.sql.clone())),
                    ("cache_hit", Json::Bool(q.cache_hit)),
                    ("elapsed_us", Json::Int(q.elapsed_us as i64)),
                    ("grouped", Json::Bool(q.grouped)),
                    (
                        "groups",
                        Json::Arr(
                            q.groups
                                .iter()
                                .map(|g| {
                                    Json::obj([
                                        ("key", g.key.to_json()),
                                        ("result", g.result.to_json()),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ];
                if let Some(trace) = &q.trace {
                    pairs.push((
                        "trace",
                        Json::Arr(trace.iter().map(WireSpan::to_json).collect()),
                    ));
                }
                Json::obj(pairs)
            }
            Response::Loaded {
                table,
                observations,
                entities,
            } => Json::obj([
                ("ok", Json::Bool(true)),
                ("op", Json::Str("load_csv".into())),
                ("table", Json::Str(table.clone())),
                ("observations", Json::Int(*observations as i64)),
                ("entities", Json::Int(*entities as i64)),
            ]),
            Response::Appended {
                table,
                observations,
                entities,
                refrozen,
                incremental,
            } => Json::obj([
                ("ok", Json::Bool(true)),
                ("op", Json::Str("append_stream".into())),
                ("table", Json::Str(table.clone())),
                ("observations", Json::Int(*observations as i64)),
                ("entities", Json::Int(*entities as i64)),
                ("refrozen", Json::Int(*refrozen as i64)),
                ("incremental", Json::Bool(*incremental)),
            ]),
            Response::Warmed {
                sql,
                universes,
                already_cached,
            } => Json::obj([
                ("ok", Json::Bool(true)),
                ("op", Json::Str("warm".into())),
                ("sql", Json::Str(sql.clone())),
                ("universes", Json::Int(*universes as i64)),
                ("already_cached", Json::Bool(*already_cached)),
            ]),
            Response::SessionOpened { name, estimators } => Json::obj([
                ("ok", Json::Bool(true)),
                ("op", Json::Str("session_open".into())),
                ("name", Json::Str(name.clone())),
                (
                    "estimators",
                    Json::Arr(estimators.iter().map(|e| Json::Str(e.clone())).collect()),
                ),
            ]),
            Response::SessionClosed {
                name,
                prepared_dropped,
            } => Json::obj([
                ("ok", Json::Bool(true)),
                ("op", Json::Str("session_close".into())),
                ("name", Json::Str(name.clone())),
                ("prepared_dropped", Json::Int(*prepared_dropped as i64)),
            ]),
            Response::Prepared {
                session,
                name,
                sql,
                universes,
                already_cached,
            } => Json::obj([
                ("ok", Json::Bool(true)),
                ("op", Json::Str("prepare".into())),
                ("session", Json::Str(session.clone())),
                ("name", Json::Str(name.clone())),
                ("sql", Json::Str(sql.clone())),
                ("universes", Json::Int(*universes as i64)),
                ("already_cached", Json::Bool(*already_cached)),
            ]),
            Response::Deallocated { session, name } => Json::obj([
                ("ok", Json::Bool(true)),
                ("op", Json::Str("deallocate".into())),
                ("session", Json::Str(session.clone())),
                ("name", Json::Str(name.clone())),
            ]),
            Response::Info(i) => Json::obj([
                ("ok", Json::Bool(true)),
                ("op", Json::Str("server_info".into())),
                ("version", Json::Str(i.version.clone())),
                ("protocol", Json::Int(i.protocol as i64)),
                ("uptime_ms", Json::Int(i.uptime_ms as i64)),
                ("active_sessions", Json::Int(i.active_sessions as i64)),
                (
                    "fronts",
                    Json::Arr(i.fronts.iter().map(|f| Json::Str(f.clone())).collect()),
                ),
                ("workers", Json::Int(i.workers as i64)),
                (
                    "data_dir",
                    match &i.data_dir {
                        Some(dir) => Json::Str(dir.clone()),
                        None => Json::Null,
                    },
                ),
                ("durability", Json::Str(i.durability.clone())),
                (
                    "last_checkpoint_age_ms",
                    Json::from_opt_f64(i.last_checkpoint_age_ms),
                ),
            ]),
            Response::Stats(s) => Json::obj([
                ("ok", Json::Bool(true)),
                ("op", Json::Str("stats".into())),
                ("protocol", Json::Int(s.protocol as i64)),
                (
                    "tables",
                    Json::Arr(s.tables.iter().map(|t| Json::Str(t.clone())).collect()),
                ),
                ("workers", Json::Int(s.workers as i64)),
                ("connections", Json::Int(s.connections as i64)),
                ("requests", Json::Int(s.requests as i64)),
                ("errors", Json::Int(s.errors as i64)),
                ("uptime_ms", Json::Int(s.uptime_ms as i64)),
                (
                    "sessions",
                    Json::Arr(
                        s.sessions
                            .iter()
                            .map(|sess| {
                                Json::obj([
                                    ("name", Json::Str(sess.name.clone())),
                                    (
                                        "estimators",
                                        Json::Arr(
                                            sess.estimators
                                                .iter()
                                                .map(|e| Json::Str(e.clone()))
                                                .collect(),
                                        ),
                                    ),
                                    ("prepared", Json::Int(sess.prepared as i64)),
                                    ("executes", Json::Int(sess.executes as i64)),
                                    ("frozen_hits", Json::Int(sess.frozen_hits as i64)),
                                    ("age_ms", Json::Int(sess.age_ms as i64)),
                                ])
                            })
                            .collect(),
                    ),
                ),
                (
                    "cache",
                    Json::obj([
                        ("hits", Json::Int(s.cache.hits as i64)),
                        ("misses", Json::Int(s.cache.misses as i64)),
                        ("insertions", Json::Int(s.cache.insertions as i64)),
                        ("evictions", Json::Int(s.cache.evictions as i64)),
                        ("invalidations", Json::Int(s.cache.invalidations as i64)),
                        ("expirations", Json::Int(s.cache.expirations as i64)),
                        ("len", Json::Int(s.cache.len as i64)),
                        ("bytes", Json::Int(s.cache.bytes as i64)),
                        ("capacity", Json::Int(s.cache.capacity as i64)),
                        ("byte_budget", Json::from_opt_f64(s.cache.byte_budget)),
                        ("ttl_ms", Json::from_opt_f64(s.cache.ttl_ms)),
                    ]),
                ),
                (
                    "projection",
                    Json::obj([
                        ("builds", Json::Int(s.projection.builds as i64)),
                        ("reuses", Json::Int(s.projection.reuses as i64)),
                        ("bytes", Json::Int(s.projection.bytes as i64)),
                    ]),
                ),
                (
                    "exec",
                    Json::obj([
                        ("threads", Json::Int(s.exec.threads as i64)),
                        ("regions", Json::Int(s.exec.regions as i64)),
                        (
                            "parallel_regions",
                            Json::Int(s.exec.parallel_regions as i64),
                        ),
                        ("tasks", Json::Int(s.exec.tasks as i64)),
                        ("steals", Json::Int(s.exec.steals as i64)),
                        ("peak_workers", Json::Int(s.exec.peak_workers as i64)),
                    ]),
                ),
                (
                    "conn",
                    Json::obj([
                        ("open", Json::Int(s.conn.open as i64)),
                        ("peak_open", Json::Int(s.conn.peak_open as i64)),
                        ("frames_in", Json::Int(s.conn.frames_in as i64)),
                        ("frames_out", Json::Int(s.conn.frames_out as i64)),
                        ("bytes_in", Json::Int(s.conn.bytes_in as i64)),
                        ("bytes_out", Json::Int(s.conn.bytes_out as i64)),
                        ("idle_reaped", Json::Int(s.conn.idle_reaped as i64)),
                        ("backpressure", Json::Int(s.conn.backpressure as i64)),
                        (
                            "queue_depth_peak",
                            Json::Int(s.conn.queue_depth_peak as i64),
                        ),
                        (
                            "queue_wait_us_total",
                            Json::Int(s.conn.queue_wait_us_total as i64),
                        ),
                        (
                            "queue_wait_us_max",
                            Json::Int(s.conn.queue_wait_us_max as i64),
                        ),
                        ("backend", Json::Str(s.conn.backend.clone())),
                    ]),
                ),
                (
                    "incremental",
                    Json::obj([
                        (
                            "delta_batches",
                            Json::Int(s.incremental.delta_batches as i64),
                        ),
                        (
                            "rows_appended",
                            Json::Int(s.incremental.rows_appended as i64),
                        ),
                        (
                            "permutation_merges",
                            Json::Int(s.incremental.permutation_merges as i64),
                        ),
                        (
                            "snapshots_refrozen",
                            Json::Int(s.incremental.snapshots_refrozen as i64),
                        ),
                        (
                            "fallback_rebuilds",
                            Json::Int(s.incremental.fallback_rebuilds as i64),
                        ),
                    ]),
                ),
                (
                    "storage",
                    Json::obj([
                        ("wal_records", Json::Int(s.storage.wal_records as i64)),
                        ("wal_bytes", Json::Int(s.storage.wal_bytes as i64)),
                        ("fsyncs", Json::Int(s.storage.fsyncs as i64)),
                        ("checkpoints", Json::Int(s.storage.checkpoints as i64)),
                        (
                            "recovered_tables",
                            Json::Int(s.storage.recovered_tables as i64),
                        ),
                        (
                            "replayed_records",
                            Json::Int(s.storage.replayed_records as i64),
                        ),
                        (
                            "truncated_tail_bytes",
                            Json::Int(s.storage.truncated_tail_bytes as i64),
                        ),
                    ]),
                ),
            ]),
            Response::Metrics(m) => Json::obj([
                ("ok", Json::Bool(true)),
                ("op", Json::Str("metrics".into())),
                (
                    "entries",
                    Json::Arr(m.entries.iter().map(WireStageMetrics::to_json).collect()),
                ),
            ]),
            Response::Pong => {
                Json::obj([("ok", Json::Bool(true)), ("op", Json::Str("ping".into()))])
            }
            Response::Checkpointed { tables, bytes } => Json::obj([
                ("ok", Json::Bool(true)),
                ("op", Json::Str("checkpoint".into())),
                ("tables", Json::Int(*tables as i64)),
                ("bytes", Json::Int(*bytes as i64)),
            ]),
            Response::Bye => Json::obj([
                ("ok", Json::Bool(true)),
                ("op", Json::Str("shutdown".into())),
            ]),
            Response::Error(e) => Json::obj([
                ("ok", Json::Bool(false)),
                (
                    "error",
                    Json::obj([
                        ("code", Json::Str(e.code.as_str().into())),
                        ("message", Json::Str(e.message.clone())),
                        (
                            "accepted",
                            Json::Arr(e.accepted.iter().map(|n| Json::Str(n.clone())).collect()),
                        ),
                    ]),
                ),
            ]),
        };
        json.render()
    }

    /// Parses one wire line into a response.
    pub fn decode(line: &str) -> Result<Response, ProtoError> {
        let json = parse(line)?;
        let ok = json
            .get("ok")
            .and_then(Json::as_bool)
            .ok_or_else(|| missing("ok"))?;
        if !ok {
            let e = json.get("error").ok_or_else(|| missing("error"))?;
            let code_str = req_str(e, "code")?;
            let code = ErrorCode::parse(&code_str)
                .ok_or_else(|| ProtoError(format!("unknown error code {code_str:?}")))?;
            let accepted = match e.get("accepted") {
                None | Some(Json::Null) => Vec::new(),
                Some(v) => v
                    .as_arr()
                    .ok_or_else(|| missing("accepted"))?
                    .iter()
                    .map(|n| n.as_str().map(str::to_string))
                    .collect::<Option<Vec<_>>>()
                    .ok_or_else(|| missing("accepted"))?,
            };
            return Ok(Response::Error(WireError {
                code,
                message: req_str(e, "message")?,
                accepted,
            }));
        }
        let op = req_str(&json, "op")?;
        match op.as_str() {
            "query" => {
                let groups = json
                    .get("groups")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| missing("groups"))?
                    .iter()
                    .map(|g| {
                        Ok(GroupReply {
                            key: WireValue::from_json(g.get("key").ok_or_else(|| missing("key"))?)?,
                            result: WireResult::from_json(
                                g.get("result").ok_or_else(|| missing("result"))?,
                            )?,
                        })
                    })
                    .collect::<Result<Vec<_>, ProtoError>>()?;
                let trace = match json.get("trace") {
                    None | Some(Json::Null) => None,
                    Some(v) => Some(
                        v.as_arr()
                            .ok_or_else(|| missing("trace"))?
                            .iter()
                            .map(WireSpan::from_json)
                            .collect::<Result<Vec<_>, _>>()?,
                    ),
                };
                Ok(Response::Query(QueryReply {
                    sql: req_str(&json, "sql")?,
                    cache_hit: opt_bool(&json, "cache_hit", false)?,
                    elapsed_us: req_u64(&json, "elapsed_us")?,
                    grouped: opt_bool(&json, "grouped", false)?,
                    groups,
                    trace,
                }))
            }
            "load_csv" => Ok(Response::Loaded {
                table: req_str(&json, "table")?,
                observations: req_u64(&json, "observations")?,
                entities: req_u64(&json, "entities")?,
            }),
            "append_stream" => Ok(Response::Appended {
                table: req_str(&json, "table")?,
                observations: req_u64(&json, "observations")?,
                entities: req_u64(&json, "entities")?,
                refrozen: req_u64(&json, "refrozen")?,
                incremental: json
                    .get("incremental")
                    .and_then(Json::as_bool)
                    .ok_or_else(|| missing("incremental"))?,
            }),
            "warm" => Ok(Response::Warmed {
                sql: req_str(&json, "sql")?,
                universes: req_u64(&json, "universes")?,
                already_cached: opt_bool(&json, "already_cached", false)?,
            }),
            "session_open" => Ok(Response::SessionOpened {
                name: req_str(&json, "name")?,
                estimators: req_str_arr(&json, "estimators")?,
            }),
            "session_close" => Ok(Response::SessionClosed {
                name: req_str(&json, "name")?,
                prepared_dropped: req_u64(&json, "prepared_dropped")?,
            }),
            "prepare" => Ok(Response::Prepared {
                session: req_str(&json, "session")?,
                name: req_str(&json, "name")?,
                sql: req_str(&json, "sql")?,
                universes: req_u64(&json, "universes")?,
                already_cached: opt_bool(&json, "already_cached", false)?,
            }),
            "deallocate" => Ok(Response::Deallocated {
                session: req_str(&json, "session")?,
                name: req_str(&json, "name")?,
            }),
            "server_info" => {
                let data_dir = match json.get("data_dir") {
                    None | Some(Json::Null) => None,
                    Some(v) => Some(
                        v.as_str()
                            .map(str::to_string)
                            .ok_or_else(|| missing("data_dir"))?,
                    ),
                };
                Ok(Response::Info(ServerInfoReply {
                    version: req_str(&json, "version")?,
                    protocol: req_u64(&json, "protocol")?,
                    uptime_ms: req_u64(&json, "uptime_ms")?,
                    active_sessions: req_u64(&json, "active_sessions")?,
                    fronts: req_str_arr(&json, "fronts")?,
                    workers: req_u64(&json, "workers")?,
                    data_dir,
                    durability: req_str(&json, "durability")?,
                    last_checkpoint_age_ms: opt_f64(&json, "last_checkpoint_age_ms")?,
                }))
            }
            "stats" => {
                let cache = json.get("cache").ok_or_else(|| missing("cache"))?;
                let projection = json
                    .get("projection")
                    .ok_or_else(|| missing("projection"))?;
                let exec = json.get("exec").ok_or_else(|| missing("exec"))?;
                let conn = json.get("conn").ok_or_else(|| missing("conn"))?;
                let incremental = json
                    .get("incremental")
                    .ok_or_else(|| missing("incremental"))?;
                let storage = json.get("storage").ok_or_else(|| missing("storage"))?;
                let sessions = json
                    .get("sessions")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| missing("sessions"))?
                    .iter()
                    .map(|sess| {
                        Ok(WireSessionStats {
                            name: req_str(sess, "name")?,
                            estimators: req_str_arr(sess, "estimators")?,
                            prepared: req_u64(sess, "prepared")?,
                            executes: req_u64(sess, "executes")?,
                            frozen_hits: req_u64(sess, "frozen_hits")?,
                            age_ms: req_u64(sess, "age_ms")?,
                        })
                    })
                    .collect::<Result<Vec<_>, ProtoError>>()?;
                Ok(Response::Stats(Box::new(StatsReply {
                    protocol: req_u64(&json, "protocol")?,
                    tables: req_str_arr(&json, "tables")?,
                    workers: req_u64(&json, "workers")?,
                    connections: req_u64(&json, "connections")?,
                    requests: req_u64(&json, "requests")?,
                    errors: req_u64(&json, "errors")?,
                    uptime_ms: req_u64(&json, "uptime_ms")?,
                    sessions,
                    cache: WireCacheStats {
                        hits: req_u64(cache, "hits")?,
                        misses: req_u64(cache, "misses")?,
                        insertions: req_u64(cache, "insertions")?,
                        evictions: req_u64(cache, "evictions")?,
                        invalidations: req_u64(cache, "invalidations")?,
                        expirations: req_u64(cache, "expirations")?,
                        len: req_u64(cache, "len")?,
                        bytes: req_u64(cache, "bytes")?,
                        capacity: req_u64(cache, "capacity")?,
                        byte_budget: opt_f64(cache, "byte_budget")?,
                        ttl_ms: opt_f64(cache, "ttl_ms")?,
                    },
                    projection: WireProjectionStats {
                        builds: req_u64(projection, "builds")?,
                        reuses: req_u64(projection, "reuses")?,
                        bytes: req_u64(projection, "bytes")?,
                    },
                    exec: WireExecStats {
                        threads: req_u64(exec, "threads")?,
                        regions: req_u64(exec, "regions")?,
                        parallel_regions: req_u64(exec, "parallel_regions")?,
                        tasks: req_u64(exec, "tasks")?,
                        steals: req_u64(exec, "steals")?,
                        peak_workers: req_u64(exec, "peak_workers")?,
                    },
                    conn: WireConnStats {
                        open: req_u64(conn, "open")?,
                        peak_open: req_u64(conn, "peak_open")?,
                        frames_in: req_u64(conn, "frames_in")?,
                        frames_out: req_u64(conn, "frames_out")?,
                        bytes_in: req_u64(conn, "bytes_in")?,
                        bytes_out: req_u64(conn, "bytes_out")?,
                        idle_reaped: req_u64(conn, "idle_reaped")?,
                        backpressure: req_u64(conn, "backpressure")?,
                        queue_depth_peak: req_u64(conn, "queue_depth_peak")?,
                        queue_wait_us_total: req_u64(conn, "queue_wait_us_total")?,
                        queue_wait_us_max: req_u64(conn, "queue_wait_us_max")?,
                        backend: req_str(conn, "backend")?,
                    },
                    incremental: WireIncrementalStats {
                        delta_batches: req_u64(incremental, "delta_batches")?,
                        rows_appended: req_u64(incremental, "rows_appended")?,
                        permutation_merges: req_u64(incremental, "permutation_merges")?,
                        snapshots_refrozen: req_u64(incremental, "snapshots_refrozen")?,
                        fallback_rebuilds: req_u64(incremental, "fallback_rebuilds")?,
                    },
                    storage: WireStorageStats {
                        wal_records: req_u64(storage, "wal_records")?,
                        wal_bytes: req_u64(storage, "wal_bytes")?,
                        fsyncs: req_u64(storage, "fsyncs")?,
                        checkpoints: req_u64(storage, "checkpoints")?,
                        recovered_tables: req_u64(storage, "recovered_tables")?,
                        replayed_records: req_u64(storage, "replayed_records")?,
                        truncated_tail_bytes: req_u64(storage, "truncated_tail_bytes")?,
                    },
                })))
            }
            "metrics" => {
                let entries = json
                    .get("entries")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| missing("entries"))?
                    .iter()
                    .map(WireStageMetrics::from_json)
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Response::Metrics(MetricsReply { entries }))
            }
            "ping" => Ok(Response::Pong),
            "checkpoint" => Ok(Response::Checkpointed {
                tables: req_u64(&json, "tables")?,
                bytes: req_u64(&json, "bytes")?,
            }),
            "shutdown" => Ok(Response::Bye),
            other => Err(ProtoError(format!("unknown response op {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let requests = [
            Request::Query(QueryRequest {
                sql: "SELECT SUM(v) FROM t WHERE v < 10 GROUP BY g".into(),
                estimators: vec!["bucket".into(), "naive".into()],
                cached: false,
                trace: false,
            }),
            Request::Query(QueryRequest {
                sql: "SELECT SUM(v) FROM t".into(),
                estimators: vec!["bucket".into()],
                cached: true,
                trace: true,
            }),
            Request::LoadCsv(LoadCsvRequest {
                table: "t".into(),
                columns: vec![("k".into(), "str".into()), ("v".into(), "float".into())],
                entity_column: "k".into(),
                source_column: "worker".into(),
                csv: "worker,k,v\n0,A,1\n".into(),
                append: true,
            }),
            Request::AppendStream {
                table: "t".into(),
                source_column: "worker".into(),
                csv: "worker,k,v\n0,B,2\n1,C,3\n".into(),
            },
            Request::Warm {
                sql: "SELECT SUM(v) FROM t".into(),
            },
            Request::SessionOpen {
                name: "analyst-1".into(),
                estimators: vec!["bucket".into(), "monte-carlo".into()],
            },
            Request::SessionOpen {
                name: "bare".into(),
                estimators: Vec::new(),
            },
            Request::SessionClose {
                name: "analyst-1".into(),
            },
            Request::Prepare {
                session: "analyst-1".into(),
                name: "q1".into(),
                sql: "SELECT SUM(v) FROM t WHERE v < 10".into(),
            },
            Request::ExecutePrepared {
                session: "analyst-1".into(),
                name: "q1".into(),
            },
            Request::Deallocate {
                session: "analyst-1".into(),
                name: "q1".into(),
            },
            Request::ServerInfo,
            Request::Stats,
            Request::Metrics,
            Request::Ping,
            Request::Checkpoint,
            Request::Shutdown,
        ];
        for req in requests {
            let line = req.encode();
            assert!(!line.contains('\n'), "one request per line: {line}");
            assert_eq!(Request::decode(&line).unwrap(), req, "{line}");
        }
    }

    #[test]
    fn query_request_defaults() {
        let req = Request::decode(r#"{"op":"query","sql":"SELECT COUNT(*) FROM t"}"#).unwrap();
        match req {
            Request::Query(q) => {
                assert!(q.cached, "cached defaults on");
                assert!(q.estimators.is_empty());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn malformed_requests_decode_to_errors() {
        for bad in [
            "not json",
            "42",
            r#"{"sql":"SELECT"}"#,
            r#"{"op":"launch_missiles"}"#,
            r#"{"op":"query"}"#,
            r#"{"op":"query","sql":7}"#,
            r#"{"op":"query","sql":"x","estimators":"bucket"}"#,
        ] {
            assert!(Request::decode(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn responses_round_trip() {
        let result = WireResult {
            query: "SELECT SUM(v) FROM t".into(),
            observed: 13_300.0,
            corrected: Some(13_950.000000000002),
            method: "bucket".into(),
            n_hat: Some(5.5),
            upper_bound: None,
            extreme: Some(WireExtreme {
                trusted: false,
                observed: 300.0,
                estimated_missing: Some(0.75),
            }),
            diagnostics: WireDiagnostics {
                coverage: Some(0.8),
                contributing_sources: 5,
                max_source_share: Some(1.0 / 3.0),
                source_gini: None,
            },
            recommendation: "bucket".into(),
            estimates: vec![WireEstimate {
                name: "naive".into(),
                delta: Some(1_662.5),
                n_hat: Some(4.5),
                corrected: Some(14_962.5),
            }],
        };
        let responses = [
            Response::Query(QueryReply {
                sql: "SELECT SUM(v) FROM t".into(),
                cache_hit: true,
                elapsed_us: 123,
                grouped: false,
                groups: vec![GroupReply {
                    key: WireValue(Value::Null),
                    result: result.clone(),
                }],
                trace: None,
            }),
            Response::Query(QueryReply {
                sql: "SELECT SUM(v) FROM t".into(),
                cache_hit: false,
                elapsed_us: 870,
                grouped: false,
                groups: vec![GroupReply {
                    key: WireValue(Value::Null),
                    result: result.clone(),
                }],
                trace: Some(vec![
                    WireSpan {
                        stage: "request".into(),
                        label: None,
                        parent: None,
                        start_ns: 0,
                        dur_ns: 870_000,
                    },
                    WireSpan {
                        stage: "estimator_fanout".into(),
                        label: Some("bucket".into()),
                        parent: Some(0),
                        start_ns: 12_500,
                        dur_ns: 700_000,
                    },
                ]),
            }),
            Response::Query(QueryReply {
                sql: "SELECT SUM(v) FROM t GROUP BY g".into(),
                cache_hit: false,
                elapsed_us: 0,
                grouped: true,
                groups: vec![
                    GroupReply {
                        key: WireValue(Value::Str("CA".into())),
                        result: result.clone(),
                    },
                    GroupReply {
                        key: WireValue(Value::Int(-3)),
                        result: result.clone(),
                    },
                    GroupReply {
                        key: WireValue(Value::Float(2.5)),
                        result,
                    },
                ],
                trace: None,
            }),
            Response::Metrics(MetricsReply {
                entries: vec![
                    WireStageMetrics {
                        verb: "query".into(),
                        stage: "request".into(),
                        count: 41,
                        p50_us: 420.5,
                        p90_us: 1_000.0,
                        p99_us: 2_830.0,
                        max_us: 2_831.25,
                        mean_us: 600.125,
                    },
                    WireStageMetrics {
                        verb: "append_stream".into(),
                        stage: "refreeze".into(),
                        count: 3,
                        p50_us: 90.0,
                        p90_us: 120.0,
                        p99_us: 120.0,
                        max_us: 118.75,
                        mean_us: 99.5,
                    },
                ],
            }),
            Response::Metrics(MetricsReply {
                entries: Vec::new(),
            }),
            Response::Loaded {
                table: "t".into(),
                observations: 9,
                entities: 4,
            },
            Response::Appended {
                table: "t".into(),
                observations: 100,
                entities: 54,
                refrozen: 3,
                incremental: true,
            },
            Response::Appended {
                table: "t".into(),
                observations: 2,
                entities: 54,
                refrozen: 0,
                incremental: false,
            },
            Response::Warmed {
                sql: "SELECT SUM(v) FROM t".into(),
                universes: 4,
                already_cached: true,
            },
            Response::SessionOpened {
                name: "analyst-1".into(),
                estimators: vec!["bucket".into(), "naive".into()],
            },
            Response::SessionClosed {
                name: "analyst-1".into(),
                prepared_dropped: 2,
            },
            Response::Prepared {
                session: "analyst-1".into(),
                name: "q1".into(),
                sql: "SELECT SUM(v) FROM t".into(),
                universes: 1,
                already_cached: false,
            },
            Response::Deallocated {
                session: "analyst-1".into(),
                name: "q1".into(),
            },
            Response::Info(ServerInfoReply {
                version: "0.1.0".into(),
                protocol: PROTOCOL_VERSION,
                uptime_ms: 12,
                active_sessions: 3,
                fronts: vec!["json".into(), "pgwire".into()],
                workers: 4,
                data_dir: None,
                durability: "off".into(),
                last_checkpoint_age_ms: None,
            }),
            Response::Info(ServerInfoReply {
                version: "0.1.0".into(),
                protocol: PROTOCOL_VERSION,
                uptime_ms: 90_000,
                active_sessions: 0,
                fronts: vec!["json".into()],
                workers: 2,
                data_dir: Some("/var/lib/uu".into()),
                durability: "batch".into(),
                last_checkpoint_age_ms: Some(1_234.5),
            }),
            Response::Checkpointed {
                tables: 2,
                bytes: 40_960,
            },
            Response::Pong,
            Response::Bye,
            Response::Error(WireError::unknown_estimator(&UnknownEstimator {
                name: "chao2000".into(),
            })),
            Response::Error(WireError::new(ErrorCode::Parse, "bad SQL")),
        ];
        for resp in responses {
            let line = resp.encode();
            assert!(!line.contains('\n'), "one response per line: {line}");
            assert_eq!(Response::decode(&line).unwrap(), resp, "{line}");
        }
    }

    #[test]
    fn stats_reply_round_trips() {
        let stats = Response::Stats(Box::new(StatsReply {
            protocol: PROTOCOL_VERSION,
            tables: vec!["companies".into(), "t".into()],
            workers: 4,
            connections: 10,
            requests: 25,
            errors: 2,
            uptime_ms: 1234,
            sessions: vec![WireSessionStats {
                name: "analyst-1".into(),
                estimators: vec!["bucket".into()],
                prepared: 2,
                executes: 40,
                frozen_hits: 38,
                age_ms: 600,
            }],
            cache: WireCacheStats {
                hits: 7,
                misses: 3,
                insertions: 3,
                evictions: 1,
                invalidations: 0,
                expirations: 0,
                len: 2,
                bytes: 4096,
                capacity: 128,
                byte_budget: Some(1e6),
                ttl_ms: None,
            },
            projection: WireProjectionStats {
                builds: 3,
                reuses: 17,
                bytes: 65_536,
            },
            exec: WireExecStats {
                threads: 8,
                regions: 100,
                parallel_regions: 20,
                tasks: 500,
                steals: 9,
                peak_workers: 8,
            },
            conn: WireConnStats {
                open: 1003,
                peak_open: 1005,
                frames_in: 90,
                frames_out: 92,
                bytes_in: 16_384,
                bytes_out: 65_000,
                idle_reaped: 4,
                backpressure: 1,
                queue_depth_peak: 17,
                queue_wait_us_total: 4_200,
                queue_wait_us_max: 950,
                backend: "epoll".into(),
            },
            incremental: WireIncrementalStats {
                delta_batches: 6,
                rows_appended: 600,
                permutation_merges: 11,
                snapshots_refrozen: 5,
                fallback_rebuilds: 1,
            },
            storage: WireStorageStats {
                wal_records: 8,
                wal_bytes: 12_288,
                fsyncs: 9,
                checkpoints: 2,
                recovered_tables: 1,
                replayed_records: 3,
                truncated_tail_bytes: 17,
            },
        }));
        assert_eq!(Response::decode(&stats.encode()).unwrap(), stats);
    }

    #[test]
    fn checkpoint_and_storage_decode_strictly() {
        // Responses: every field required, no defaulting.
        for bad in [
            r#"{"ok":true,"op":"checkpoint"}"#,
            r#"{"ok":true,"op":"checkpoint","tables":1}"#,
            r#"{"ok":true,"op":"checkpoint","tables":1,"bytes":"many"}"#,
        ] {
            assert!(Response::decode(bad).is_err(), "{bad:?}");
        }
        // A stats line whose storage block lost a counter fails decode.
        let Response::Stats(_) = Response::decode(
            &Response::Stats(Box::new(StatsReply {
                protocol: PROTOCOL_VERSION,
                tables: Vec::new(),
                workers: 1,
                connections: 0,
                requests: 0,
                errors: 0,
                uptime_ms: 0,
                sessions: Vec::new(),
                cache: WireCacheStats {
                    hits: 0,
                    misses: 0,
                    insertions: 0,
                    evictions: 0,
                    invalidations: 0,
                    expirations: 0,
                    len: 0,
                    bytes: 0,
                    capacity: 0,
                    byte_budget: None,
                    ttl_ms: None,
                },
                projection: WireProjectionStats {
                    builds: 0,
                    reuses: 0,
                    bytes: 0,
                },
                exec: WireExecStats {
                    threads: 0,
                    regions: 0,
                    parallel_regions: 0,
                    tasks: 0,
                    steals: 0,
                    peak_workers: 0,
                },
                conn: WireConnStats {
                    open: 0,
                    peak_open: 0,
                    frames_in: 0,
                    frames_out: 0,
                    bytes_in: 0,
                    bytes_out: 0,
                    idle_reaped: 0,
                    backpressure: 0,
                    queue_depth_peak: 0,
                    queue_wait_us_total: 0,
                    queue_wait_us_max: 0,
                    backend: "poll".into(),
                },
                incremental: WireIncrementalStats {
                    delta_batches: 0,
                    rows_appended: 0,
                    permutation_merges: 0,
                    snapshots_refrozen: 0,
                    fallback_rebuilds: 0,
                },
                storage: WireStorageStats::default(),
            }))
            .encode(),
        )
        .unwrap() else {
            panic!("expected stats reply");
        };
        let gutted = r#"{"ok":true,"op":"stats","protocol":7,"tables":[],"workers":1,"connections":0,"requests":0,"errors":0,"uptime_ms":0,"sessions":[],"cache":{"hits":0,"misses":0,"insertions":0,"evictions":0,"invalidations":0,"expirations":0,"len":0,"bytes":0,"capacity":0,"byte_budget":null,"ttl_ms":null},"projection":{"builds":0,"reuses":0,"bytes":0},"exec":{"threads":0,"regions":0,"parallel_regions":0,"tasks":0,"steals":0,"peak_workers":0},"conn":{"open":0,"peak_open":0,"frames_in":0,"frames_out":0,"bytes_in":0,"bytes_out":0,"idle_reaped":0,"backpressure":0,"queue_depth_peak":0,"queue_wait_us_total":0,"queue_wait_us_max":0,"backend":"poll"},"incremental":{"delta_batches":0,"rows_appended":0,"permutation_merges":0,"snapshots_refrozen":0,"fallback_rebuilds":0},"storage":{"wal_records":0,"wal_bytes":0,"fsyncs":0,"checkpoints":0,"recovered_tables":0,"replayed_records":0}}"#;
        assert!(
            Response::decode(gutted).is_err(),
            "storage block missing truncated_tail_bytes must fail decode"
        );
    }

    #[test]
    fn malformed_append_lines_decode_to_errors() {
        for bad in [
            // requests: every field is required
            r#"{"op":"append_stream"}"#,
            r#"{"op":"append_stream","table":"t"}"#,
            r#"{"op":"append_stream","table":"t","source_column":"worker"}"#,
            r#"{"op":"append_stream","table":7,"source_column":"worker","csv":"x"}"#,
        ] {
            assert!(Request::decode(bad).is_err(), "{bad:?}");
        }
        for bad in [
            // responses: strict decode, no defaulting
            r#"{"ok":true,"op":"append_stream","table":"t"}"#,
            r#"{"ok":true,"op":"append_stream","table":"t","observations":1,"entities":1,"refrozen":0}"#,
            r#"{"ok":true,"op":"append_stream","table":"t","observations":1,"entities":1,"refrozen":0,"incremental":1}"#,
        ] {
            assert!(Response::decode(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn every_error_code_round_trips_its_wire_spelling() {
        for code in ErrorCode::all() {
            assert_eq!(ErrorCode::parse(code.as_str()), Some(code));
        }
        assert_eq!(ErrorCode::parse("no_such_code"), None);
    }

    #[test]
    fn unknown_estimator_error_lists_every_registry_name() {
        let err = WireError::unknown_estimator(&UnknownEstimator {
            name: "bogus".into(),
        });
        assert_eq!(err.code, ErrorCode::UnknownEstimator);
        assert_eq!(
            err.accepted,
            vec!["naive", "freq", "bucket", "monte-carlo", "policy"]
        );
        assert!(err.message.contains("bogus"));
    }

    #[test]
    fn nan_observed_round_trips_via_canonical_text() {
        let r = WireResult {
            query: "SELECT AVG(v) FROM t WHERE v > 99999".into(),
            observed: f64::NAN,
            corrected: None,
            method: "none".into(),
            n_hat: None,
            upper_bound: None,
            extreme: None,
            diagnostics: WireDiagnostics {
                coverage: None,
                contributing_sources: 0,
                max_source_share: None,
                source_gini: None,
            },
            recommendation: "collect-more-data".into(),
            estimates: Vec::new(),
        };
        let reply = Response::Query(QueryReply {
            sql: r.query.clone(),
            cache_hit: false,
            elapsed_us: 1,
            grouped: false,
            groups: vec![GroupReply {
                key: WireValue(Value::Null),
                result: r.clone(),
            }],
            trace: None,
        });
        let Response::Query(decoded) = Response::decode(&reply.encode()).unwrap() else {
            panic!("expected query reply");
        };
        let back = decoded.single().unwrap();
        assert!(back.observed.is_nan());
        assert_eq!(back.canonical(), r.canonical());
    }
}
