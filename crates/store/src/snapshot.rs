//! Atomic per-table snapshot checkpoints.
//!
//! One `t-<hex(table key)>.snap` file per table, written to a temp file,
//! synced, then renamed into place — a crash mid-checkpoint leaves the
//! previous snapshot intact. The whole payload sits in a single CRC-framed
//! block behind a magic header, so a snapshot is either wholly valid or
//! rejected. A snapshot carries the table itself (rows, lineage, version)
//! plus every frozen [`uu_core::profile::ProfileSnapshot`] selection that
//! was current at checkpoint time, which is what lets a restarted server
//! answer its first query from a warm cache.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use crate::codec::{put_count, put_f64, put_str, put_u32, put_u64, Reader};
use crate::crc32::crc32;
use crate::record::{
    put_column_type, put_predicate, put_value, take_column_type, take_predicate, take_value,
};
use crate::{FsyncPolicy, StoreError};
use uu_core::sample::ObservedItem;
use uu_query::predicate::Predicate;
use uu_query::schema::ColumnType;
use uu_query::table::EntityRows;
use uu_query::value::Value;

/// Snapshot file magic + format version.
const MAGIC: &[u8; 8] = b"UUSNAP1\n";

/// One frozen estimation universe inside a selection: the group key, the
/// observed items behind its [`uu_core::sample::SampleView`], and the
/// value-sort permutation the snapshot was captured with.
pub struct UniverseData {
    /// Group key (`Null` for ungrouped selections).
    pub group: Value,
    /// The view's items, in item order.
    pub items: Vec<ObservedItem>,
    /// Stable ascending value-sort permutation over the items.
    pub sorted_idx: Vec<u32>,
}

/// One cached selection as serialized state: the query shape that defined
/// it plus its frozen universes.
pub struct SelectionData {
    /// Aggregate column (`None` = `COUNT(*)`), verbatim.
    pub column: Option<String>,
    /// The membership predicate.
    pub predicate: Predicate,
    /// `GROUP BY` column, verbatim.
    pub group_by: Option<String>,
    /// Row-membership bitmap (ungrouped selections; empty otherwise).
    pub mask: Vec<u64>,
    /// The frozen universes.
    pub universes: Vec<UniverseData>,
}

/// A whole table checkpoint.
pub struct TableSnapshot {
    /// The catalog key (lowercased table name) — also the file identity.
    pub key: String,
    /// Display name, verbatim.
    pub name: String,
    /// Schema columns in order.
    pub columns: Vec<(String, ColumnType)>,
    /// The entity-key column name.
    pub key_column: String,
    /// The table's version counter at checkpoint time.
    pub version: u64,
    /// Entities in row order: `(record values, (source, count) lineage)`.
    pub entities: EntityRows,
    /// Every selection that was current (same instance and version) at
    /// checkpoint time.
    pub selections: Vec<SelectionData>,
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

/// The snapshot file path for a table key.
pub fn snapshot_path(dir: &Path, key: &str) -> PathBuf {
    dir.join(format!("t-{}.snap", hex(key.as_bytes())))
}

fn encode(snapshot: &TableSnapshot) -> Vec<u8> {
    let mut out = Vec::new();
    put_str(&mut out, &snapshot.key);
    put_str(&mut out, &snapshot.name);
    put_count(&mut out, snapshot.columns.len());
    for (name, ty) in &snapshot.columns {
        put_str(&mut out, name);
        put_column_type(&mut out, *ty);
    }
    put_str(&mut out, &snapshot.key_column);
    put_u64(&mut out, snapshot.version);
    put_count(&mut out, snapshot.entities.len());
    for (values, source_counts) in &snapshot.entities {
        put_count(&mut out, values.len());
        for value in values {
            put_value(&mut out, value);
        }
        put_count(&mut out, source_counts.len());
        for (source, count) in source_counts {
            put_u32(&mut out, *source);
            put_u32(&mut out, *count);
        }
    }
    put_count(&mut out, snapshot.selections.len());
    for selection in &snapshot.selections {
        match &selection.column {
            Some(column) => {
                out.push(1);
                put_str(&mut out, column);
            }
            None => out.push(0),
        }
        put_predicate(&mut out, &selection.predicate);
        match &selection.group_by {
            Some(group_by) => {
                out.push(1);
                put_str(&mut out, group_by);
            }
            None => out.push(0),
        }
        put_count(&mut out, selection.mask.len());
        for word in &selection.mask {
            put_u64(&mut out, *word);
        }
        put_count(&mut out, selection.universes.len());
        for universe in &selection.universes {
            put_value(&mut out, &universe.group);
            put_count(&mut out, universe.items.len());
            for item in &universe.items {
                put_f64(&mut out, item.value);
                put_u64(&mut out, item.multiplicity);
                put_count(&mut out, item.source_counts.len());
                for (source, count) in &item.source_counts {
                    put_u32(&mut out, *source);
                    put_u32(&mut out, *count);
                }
            }
            put_count(&mut out, universe.sorted_idx.len());
            for idx in &universe.sorted_idx {
                put_u32(&mut out, *idx);
            }
        }
    }
    out
}

fn take_opt_str(r: &mut Reader<'_>) -> Result<Option<String>, StoreError> {
    match r.take_u8()? {
        0 => Ok(None),
        1 => Ok(Some(r.take_str()?)),
        tag => Err(StoreError::Corrupt(format!("unknown option tag {tag}"))),
    }
}

fn decode(payload: &[u8]) -> Result<TableSnapshot, StoreError> {
    let mut r = Reader::new(payload);
    let key = r.take_str()?;
    let name = r.take_str()?;
    let ncols = r.take_count(5)?;
    let mut columns = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        let col = r.take_str()?;
        let ty = take_column_type(&mut r)?;
        columns.push((col, ty));
    }
    let key_column = r.take_str()?;
    let version = r.take_u64()?;
    let nents = r.take_count(8)?;
    let mut entities = Vec::with_capacity(nents);
    for _ in 0..nents {
        let nvals = r.take_count(1)?;
        let mut values = Vec::with_capacity(nvals);
        for _ in 0..nvals {
            values.push(take_value(&mut r)?);
        }
        let nsrc = r.take_count(8)?;
        let mut source_counts = Vec::with_capacity(nsrc);
        for _ in 0..nsrc {
            let source = r.take_u32()?;
            let count = r.take_u32()?;
            source_counts.push((source, count));
        }
        entities.push((values, source_counts));
    }
    let nsel = r.take_count(4)?;
    let mut selections = Vec::with_capacity(nsel);
    for _ in 0..nsel {
        let column = take_opt_str(&mut r)?;
        let predicate = take_predicate(&mut r)?;
        let group_by = take_opt_str(&mut r)?;
        let nwords = r.take_count(8)?;
        let mut mask = Vec::with_capacity(nwords);
        for _ in 0..nwords {
            mask.push(r.take_u64()?);
        }
        let nuniv = r.take_count(4)?;
        let mut universes = Vec::with_capacity(nuniv);
        for _ in 0..nuniv {
            let group = take_value(&mut r)?;
            let nitems = r.take_count(20)?;
            let mut items = Vec::with_capacity(nitems);
            for _ in 0..nitems {
                let value = r.take_f64()?;
                let multiplicity = r.take_u64()?;
                let nsrc = r.take_count(8)?;
                let mut source_counts = Vec::with_capacity(nsrc);
                for _ in 0..nsrc {
                    let source = r.take_u32()?;
                    let count = r.take_u32()?;
                    source_counts.push((source, count));
                }
                items.push(ObservedItem {
                    value,
                    multiplicity,
                    source_counts,
                });
            }
            let nsorted = r.take_count(4)?;
            let mut sorted_idx = Vec::with_capacity(nsorted);
            for _ in 0..nsorted {
                sorted_idx.push(r.take_u32()?);
            }
            universes.push(UniverseData {
                group,
                items,
                sorted_idx,
            });
        }
        selections.push(SelectionData {
            column,
            predicate,
            group_by,
            mask,
            universes,
        });
    }
    r.finish()?;
    Ok(TableSnapshot {
        key,
        name,
        columns,
        key_column,
        version,
        entities,
        selections,
    })
}

/// Writes `snapshot` atomically (temp file + fsync + rename + directory
/// fsync, syncs skipped under [`FsyncPolicy::Off`]). Returns the file's
/// byte size and how many fsyncs were issued.
pub fn write_snapshot(
    dir: &Path,
    snapshot: &TableSnapshot,
    policy: FsyncPolicy,
) -> std::io::Result<(u64, u64)> {
    let payload = encode(snapshot);
    let mut framed = Vec::with_capacity(MAGIC.len() + 8 + payload.len());
    framed.extend_from_slice(MAGIC);
    framed.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    framed.extend_from_slice(&crc32(&payload).to_le_bytes());
    framed.extend_from_slice(&payload);

    let final_path = snapshot_path(dir, &snapshot.key);
    let tmp_path = final_path.with_extension("snap.tmp");
    let mut syncs = 0u64;
    {
        let mut tmp = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp_path)?;
        tmp.write_all(&framed)?;
        if policy != FsyncPolicy::Off {
            tmp.sync_all()?;
            syncs += 1;
        }
    }
    std::fs::rename(&tmp_path, &final_path)?;
    if policy != FsyncPolicy::Off {
        // Make the rename itself durable.
        if let Ok(dir_handle) = File::open(dir) {
            let _ = dir_handle.sync_all();
            syncs += 1;
        }
    }
    Ok((framed.len() as u64, syncs))
}

/// Reads and validates one snapshot file.
pub fn read_snapshot(path: &Path) -> Result<TableSnapshot, StoreError> {
    let bytes = std::fs::read(path)?;
    if bytes.len() < MAGIC.len() + 8 || &bytes[..MAGIC.len()] != MAGIC {
        return Err(StoreError::Corrupt(format!(
            "{} is not a snapshot file (bad magic)",
            path.display()
        )));
    }
    let len = u32::from_le_bytes(
        bytes[MAGIC.len()..MAGIC.len() + 4]
            .try_into()
            .expect("4 bytes"),
    ) as usize;
    let crc = u32::from_le_bytes(
        bytes[MAGIC.len() + 4..MAGIC.len() + 8]
            .try_into()
            .expect("4 bytes"),
    );
    let payload = &bytes[MAGIC.len() + 8..];
    if payload.len() != len {
        return Err(StoreError::Corrupt(format!(
            "{}: payload is {} bytes, header promises {len}",
            path.display(),
            payload.len()
        )));
    }
    if crc32(payload) != crc {
        return Err(StoreError::Corrupt(format!(
            "{}: payload CRC mismatch",
            path.display()
        )));
    }
    decode(payload)
}

/// Every `*.snap` file in `dir`, sorted by file name for deterministic
/// recovery order.
pub fn snapshot_files(dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.extension().is_some_and(|ext| ext == "snap") {
            files.push(path);
        }
    }
    files.sort();
    Ok(files)
}

#[cfg(test)]
mod tests {
    use super::*;
    use uu_query::predicate::CmpOp;

    fn scratch() -> PathBuf {
        let dir = std::env::temp_dir().join(format!("uu-snap-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample() -> TableSnapshot {
        TableSnapshot {
            key: "companies".to_string(),
            name: "Companies".to_string(),
            columns: vec![
                ("company".to_string(), ColumnType::Str),
                ("employees".to_string(), ColumnType::Float),
            ],
            key_column: "company".to_string(),
            version: 9,
            entities: vec![
                (
                    vec![Value::Str("A".to_string()), Value::Float(1000.0)],
                    vec![(0, 2), (3, 1)],
                ),
                (vec![Value::Str("B".to_string()), Value::Null], vec![(1, 1)]),
            ],
            selections: vec![SelectionData {
                column: Some("employees".to_string()),
                predicate: Predicate::cmp("employees", CmpOp::Gt, Value::Float(0.0)),
                group_by: None,
                mask: vec![0b01],
                universes: vec![UniverseData {
                    group: Value::Null,
                    items: vec![ObservedItem {
                        value: 1000.0,
                        multiplicity: 3,
                        source_counts: vec![(0, 2), (3, 1)],
                    }],
                    sorted_idx: vec![0],
                }],
            }],
        }
    }

    #[test]
    fn snapshots_round_trip_through_disk() {
        let dir = scratch();
        let snapshot = sample();
        let (bytes, _) = write_snapshot(&dir, &snapshot, FsyncPolicy::Off).unwrap();
        assert!(bytes > 0);
        let back = read_snapshot(&snapshot_path(&dir, "companies")).unwrap();
        assert_eq!(back.key, snapshot.key);
        assert_eq!(back.name, snapshot.name);
        assert_eq!(back.columns, snapshot.columns);
        assert_eq!(back.key_column, snapshot.key_column);
        assert_eq!(back.version, snapshot.version);
        assert_eq!(back.entities, snapshot.entities);
        assert_eq!(back.selections.len(), 1);
        let sel = &back.selections[0];
        assert_eq!(sel.column.as_deref(), Some("employees"));
        assert_eq!(sel.mask, vec![0b01]);
        assert_eq!(
            sel.universes[0].items,
            snapshot.selections[0].universes[0].items
        );
        assert_eq!(sel.universes[0].sorted_idx, vec![0]);
    }

    #[test]
    fn rewrite_replaces_atomically_and_corruption_is_detected() {
        let dir = scratch();
        let mut snapshot = sample();
        write_snapshot(&dir, &snapshot, FsyncPolicy::Off).unwrap();
        snapshot.version = 12;
        write_snapshot(&dir, &snapshot, FsyncPolicy::Off).unwrap();
        let path = snapshot_path(&dir, "companies");
        assert_eq!(read_snapshot(&path).unwrap().version, 12);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(read_snapshot(&path), Err(StoreError::Corrupt(_))));
    }
}
