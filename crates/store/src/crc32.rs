//! Hand-rolled IEEE CRC-32 (the polynomial Ethernet, gzip and SQLite's WAL
//! all use), table-driven with a const-built table. The WAL and snapshot
//! frames carry this checksum so a torn or bit-rotted record is detected
//! before any of it is replayed.

/// Reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 == 1 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC-32 of `data` (init `0xFFFF_FFFF`, final XOR — the standard check
/// value of `b"123456789"` is `0xCBF4_3926`).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        crc = TABLE[((crc ^ byte as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_standard_check_value() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_input_and_sensitivity() {
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"abc"), crc32(b"abd"));
        assert_ne!(crc32(b"abc"), crc32(b"abc\0"));
    }
}
