//! Little-endian binary primitives shared by the WAL record and snapshot
//! codecs. Everything is length-prefixed and fixed-width — no varints — so
//! the formats stay trivially auditable. Floats travel as raw IEEE-754 bits
//! (`to_bits`/`from_bits`), which round-trips NaN payloads and signed zeros
//! exactly; the recovery parity tests depend on that.

use crate::StoreError;

/// Appends a `u8`.
pub fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

/// Appends a little-endian `u32`.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `u64`.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `i64`.
pub fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends an `f64` as its raw bit pattern (exact, NaN-preserving).
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

/// Appends a UTF-8 string as `u32` byte length + bytes.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// Appends a collection count (`u32` — batches and tables stay far below
/// 4 Gi entries).
pub fn put_count(out: &mut Vec<u8>, n: usize) {
    put_u32(out, n as u32);
}

/// A bounds-checked cursor over an encoded payload. Every `take_*` returns
/// [`StoreError::Corrupt`] instead of panicking on a short or malformed
/// buffer — recovery must survive arbitrary bytes.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A cursor at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        if self.remaining() < n {
            return Err(StoreError::Corrupt(format!(
                "payload truncated: needed {n} bytes at offset {}, had {}",
                self.pos,
                self.remaining()
            )));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads a `u8`.
    pub fn take_u8(&mut self) -> Result<u8, StoreError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn take_u32(&mut self) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads a little-endian `u64`.
    pub fn take_u64(&mut self) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads a little-endian `i64`.
    pub fn take_i64(&mut self) -> Result<i64, StoreError> {
        Ok(i64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads an `f64` from its raw bit pattern.
    pub fn take_f64(&mut self) -> Result<f64, StoreError> {
        Ok(f64::from_bits(self.take_u64()?))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn take_str(&mut self) -> Result<String, StoreError> {
        let len = self.take_u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| StoreError::Corrupt("string payload is not UTF-8".to_string()))
    }

    /// Reads a collection count, bounded by the bytes that could possibly
    /// back it (`min_elem_bytes` per element) so a corrupt count cannot
    /// trigger a huge allocation.
    pub fn take_count(&mut self, min_elem_bytes: usize) -> Result<usize, StoreError> {
        let n = self.take_u32()? as usize;
        if n.saturating_mul(min_elem_bytes.max(1)) > self.remaining() {
            return Err(StoreError::Corrupt(format!(
                "count {n} exceeds remaining payload ({} bytes)",
                self.remaining()
            )));
        }
        Ok(n)
    }

    /// Asserts the payload was consumed exactly.
    pub fn finish(self) -> Result<(), StoreError> {
        if self.remaining() != 0 {
            return Err(StoreError::Corrupt(format!(
                "{} trailing bytes after payload",
                self.remaining()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 7);
        put_u32(&mut buf, 0xDEAD_BEEF);
        put_u64(&mut buf, u64::MAX - 1);
        put_i64(&mut buf, -42);
        put_f64(&mut buf, f64::NAN);
        put_f64(&mut buf, -0.0);
        put_str(&mut buf, "héllo");
        let mut r = Reader::new(&buf);
        assert_eq!(r.take_u8().unwrap(), 7);
        assert_eq!(r.take_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.take_u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.take_i64().unwrap(), -42);
        assert_eq!(r.take_f64().unwrap().to_bits(), f64::NAN.to_bits());
        assert_eq!(r.take_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.take_str().unwrap(), "héllo");
        r.finish().unwrap();
    }

    #[test]
    fn short_reads_and_bad_counts_are_corrupt_not_panics() {
        let mut r = Reader::new(&[1, 2]);
        assert!(matches!(r.take_u32(), Err(StoreError::Corrupt(_))));
        let mut buf = Vec::new();
        put_u32(&mut buf, u32::MAX);
        let mut r = Reader::new(&buf);
        assert!(matches!(r.take_count(1), Err(StoreError::Corrupt(_))));
        let mut buf = Vec::new();
        put_u32(&mut buf, 2);
        buf.extend_from_slice(&[0xFF, 0xFE]); // invalid UTF-8
        assert!(matches!(
            Reader::new(&buf).take_str(),
            Err(StoreError::Corrupt(_))
        ));
    }
}
