//! WAL record payloads and the shared value/schema/predicate codecs.
//!
//! One [`WalRecord`] is written per committed `load_csv` / `append_stream`
//! batch: a fresh load carries the schema (the table's first touch), an
//! append carries the version watermark the batch was applied at, so replay
//! can tell already-snapshotted batches from the tail that must re-apply.

use crate::codec::{put_count, put_f64, put_i64, put_str, put_u32, put_u64, put_u8, Reader};
use crate::StoreError;
use uu_query::predicate::{CmpOp, Predicate};
use uu_query::schema::ColumnType;
use uu_query::value::Value;

/// One observation batch: `(source_id, row values)` pairs, exactly as the
/// CSV parser hands them to the catalog.
pub type Batch = Vec<(u32, Vec<Value>)>;

/// One durable unit of ingestion.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A fresh `load_csv`: creates and populates a new table.
    FreshLoad {
        /// Table name as the client sent it.
        table: String,
        /// Schema columns in order.
        columns: Vec<(String, ColumnType)>,
        /// The entity-key column.
        entity_column: String,
        /// The parsed observation batch.
        batch: Batch,
    },
    /// An `append_stream` (or `load_csv` with `"append": true`) batch onto
    /// an existing table.
    Append {
        /// Table name as the client sent it.
        table: String,
        /// The table's version when the batch was applied. Replay skips the
        /// record when the recovered table is already past it (the batch is
        /// inside the snapshot).
        version_before: u64,
        /// The parsed observation batch.
        batch: Batch,
    },
}

const TAG_FRESH: u8 = 1;
const TAG_APPEND: u8 = 2;

/// Encodes a fresh-load record payload from borrowed parts (the logging
/// path avoids cloning the batch just to build a [`WalRecord`]).
pub fn encode_fresh(
    table: &str,
    columns: &[(String, ColumnType)],
    entity_column: &str,
    batch: &Batch,
) -> Vec<u8> {
    let mut out = Vec::new();
    put_u8(&mut out, TAG_FRESH);
    put_str(&mut out, table);
    put_count(&mut out, columns.len());
    for (name, ty) in columns {
        put_str(&mut out, name);
        put_u8(&mut out, column_type_tag(*ty));
    }
    put_str(&mut out, entity_column);
    put_batch(&mut out, batch);
    out
}

/// Encodes an append record payload from borrowed parts.
pub fn encode_append(table: &str, version_before: u64, batch: &Batch) -> Vec<u8> {
    let mut out = Vec::new();
    put_u8(&mut out, TAG_APPEND);
    put_str(&mut out, table);
    put_u64(&mut out, version_before);
    put_batch(&mut out, batch);
    out
}

impl WalRecord {
    /// Encodes the record into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            WalRecord::FreshLoad {
                table,
                columns,
                entity_column,
                batch,
            } => encode_fresh(table, columns, entity_column, batch),
            WalRecord::Append {
                table,
                version_before,
                batch,
            } => encode_append(table, *version_before, batch),
        }
    }

    /// Decodes a frame payload (the CRC was already verified at the framing
    /// layer, so a failure here means real corruption, not a torn write).
    pub fn decode(payload: &[u8]) -> Result<WalRecord, StoreError> {
        let mut r = Reader::new(payload);
        let record = match r.take_u8()? {
            TAG_FRESH => {
                let table = r.take_str()?;
                let ncols = r.take_count(5)?;
                let mut columns = Vec::with_capacity(ncols);
                for _ in 0..ncols {
                    let name = r.take_str()?;
                    let ty = take_column_type(&mut r)?;
                    columns.push((name, ty));
                }
                let entity_column = r.take_str()?;
                let batch = take_batch(&mut r)?;
                WalRecord::FreshLoad {
                    table,
                    columns,
                    entity_column,
                    batch,
                }
            }
            TAG_APPEND => {
                let table = r.take_str()?;
                let version_before = r.take_u64()?;
                let batch = take_batch(&mut r)?;
                WalRecord::Append {
                    table,
                    version_before,
                    batch,
                }
            }
            tag => return Err(StoreError::Corrupt(format!("unknown WAL record tag {tag}"))),
        };
        r.finish()?;
        Ok(record)
    }

    /// Rows the record carries.
    pub fn rows(&self) -> u64 {
        match self {
            WalRecord::FreshLoad { batch, .. } | WalRecord::Append { batch, .. } => {
                batch.len() as u64
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Shared scalar codecs (also used by the snapshot format)
// ---------------------------------------------------------------------------

fn column_type_tag(ty: ColumnType) -> u8 {
    match ty {
        ColumnType::Int => 0,
        ColumnType::Float => 1,
        ColumnType::Str => 2,
    }
}

/// Reads a [`ColumnType`] tag.
pub fn take_column_type(r: &mut Reader<'_>) -> Result<ColumnType, StoreError> {
    match r.take_u8()? {
        0 => Ok(ColumnType::Int),
        1 => Ok(ColumnType::Float),
        2 => Ok(ColumnType::Str),
        tag => Err(StoreError::Corrupt(format!(
            "unknown column type tag {tag}"
        ))),
    }
}

/// Writes a [`ColumnType`] tag.
pub fn put_column_type(out: &mut Vec<u8>, ty: ColumnType) {
    put_u8(out, column_type_tag(ty));
}

/// Writes a [`Value`] (tag + payload).
pub fn put_value(out: &mut Vec<u8>, value: &Value) {
    match value {
        Value::Null => put_u8(out, 0),
        Value::Int(v) => {
            put_u8(out, 1);
            put_i64(out, *v);
        }
        Value::Float(v) => {
            put_u8(out, 2);
            put_f64(out, *v);
        }
        Value::Str(s) => {
            put_u8(out, 3);
            put_str(out, s);
        }
    }
}

/// Reads a [`Value`].
pub fn take_value(r: &mut Reader<'_>) -> Result<Value, StoreError> {
    match r.take_u8()? {
        0 => Ok(Value::Null),
        1 => Ok(Value::Int(r.take_i64()?)),
        2 => Ok(Value::Float(r.take_f64()?)),
        3 => Ok(Value::Str(r.take_str()?)),
        tag => Err(StoreError::Corrupt(format!("unknown value tag {tag}"))),
    }
}

fn put_batch(out: &mut Vec<u8>, batch: &Batch) {
    put_count(out, batch.len());
    for (source_id, values) in batch {
        put_u32(out, *source_id);
        put_count(out, values.len());
        for value in values {
            put_value(out, value);
        }
    }
}

fn take_batch(r: &mut Reader<'_>) -> Result<Batch, StoreError> {
    let nrows = r.take_count(8)?;
    let mut batch = Vec::with_capacity(nrows);
    for _ in 0..nrows {
        let source_id = r.take_u32()?;
        let nvals = r.take_count(1)?;
        let mut values = Vec::with_capacity(nvals);
        for _ in 0..nvals {
            values.push(take_value(r)?);
        }
        batch.push((source_id, values));
    }
    Ok(batch)
}

/// Writes a [`Predicate`] (recursive, tagged).
pub fn put_predicate(out: &mut Vec<u8>, p: &Predicate) {
    match p {
        Predicate::True => put_u8(out, 0),
        Predicate::Cmp { column, op, value } => {
            put_u8(out, 1);
            put_str(out, column);
            put_u8(
                out,
                match op {
                    CmpOp::Eq => 0,
                    CmpOp::Ne => 1,
                    CmpOp::Lt => 2,
                    CmpOp::Le => 3,
                    CmpOp::Gt => 4,
                    CmpOp::Ge => 5,
                },
            );
            put_value(out, value);
        }
        Predicate::And(a, b) => {
            put_u8(out, 2);
            put_predicate(out, a);
            put_predicate(out, b);
        }
        Predicate::Or(a, b) => {
            put_u8(out, 3);
            put_predicate(out, a);
            put_predicate(out, b);
        }
        Predicate::Not(inner) => {
            put_u8(out, 4);
            put_predicate(out, inner);
        }
    }
}

/// Reads a [`Predicate`].
pub fn take_predicate(r: &mut Reader<'_>) -> Result<Predicate, StoreError> {
    match r.take_u8()? {
        0 => Ok(Predicate::True),
        1 => {
            let column = r.take_str()?;
            let op = match r.take_u8()? {
                0 => CmpOp::Eq,
                1 => CmpOp::Ne,
                2 => CmpOp::Lt,
                3 => CmpOp::Le,
                4 => CmpOp::Gt,
                5 => CmpOp::Ge,
                tag => {
                    return Err(StoreError::Corrupt(format!(
                        "unknown comparison operator tag {tag}"
                    )))
                }
            };
            let value = take_value(r)?;
            Ok(Predicate::Cmp { column, op, value })
        }
        2 => Ok(Predicate::And(
            Box::new(take_predicate(r)?),
            Box::new(take_predicate(r)?),
        )),
        3 => Ok(Predicate::Or(
            Box::new(take_predicate(r)?),
            Box::new(take_predicate(r)?),
        )),
        4 => Ok(Predicate::Not(Box::new(take_predicate(r)?))),
        tag => Err(StoreError::Corrupt(format!("unknown predicate tag {tag}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_batch() -> Batch {
        vec![
            (
                0,
                vec![
                    Value::Str("acme".to_string()),
                    Value::Float(1.5),
                    Value::Null,
                ],
            ),
            (
                7,
                vec![
                    Value::Int(i64::MIN),
                    Value::Float(f64::NAN),
                    Value::Str(String::new()),
                ],
            ),
        ]
    }

    #[test]
    fn records_round_trip() {
        let records = [
            WalRecord::FreshLoad {
                table: "Companies".to_string(),
                columns: vec![
                    ("company".to_string(), ColumnType::Str),
                    ("employees".to_string(), ColumnType::Float),
                    ("rank".to_string(), ColumnType::Int),
                ],
                entity_column: "company".to_string(),
                batch: sample_batch(),
            },
            WalRecord::Append {
                table: "companies".to_string(),
                version_before: u64::MAX / 2,
                batch: sample_batch(),
            },
        ];
        for record in records {
            let decoded = WalRecord::decode(&record.encode()).unwrap();
            // NaN makes derived PartialEq lie; compare re-encodings instead.
            assert_eq!(decoded.encode(), record.encode());
            assert_eq!(decoded.rows(), 2);
        }
    }

    #[test]
    fn predicates_round_trip() {
        let p = Predicate::cmp("state", CmpOp::Eq, Value::Str("CA".to_string()))
            .and(Predicate::cmp("employees", CmpOp::Ge, Value::Float(10.0)).not())
            .or(Predicate::True);
        let mut buf = Vec::new();
        put_predicate(&mut buf, &p);
        let mut r = Reader::new(&buf);
        assert_eq!(take_predicate(&mut r).unwrap(), p);
        r.finish().unwrap();
    }

    #[test]
    fn malformed_payloads_are_corrupt_not_panics() {
        assert!(WalRecord::decode(&[]).is_err());
        assert!(WalRecord::decode(&[9]).is_err());
        let mut good = WalRecord::Append {
            table: "t".to_string(),
            version_before: 3,
            batch: sample_batch(),
        }
        .encode();
        good.push(0); // trailing byte
        assert!(matches!(
            WalRecord::decode(&good),
            Err(StoreError::Corrupt(_))
        ));
    }
}
