//! `uu_store` — the durability layer under the catalog.
//!
//! Three pieces, layered:
//!
//! 1. **Observation WAL** ([`wal`]): one CRC-framed record per committed
//!    `load_csv` / `append_stream` batch, written *before* the in-memory
//!    [`Catalog`] mutation and flushed per the [`FsyncPolicy`].
//! 2. **Snapshot checkpoints** ([`snapshot`]): an atomic per-table binary
//!    serialization of each [`IntegratedTable`] (rows, lineage, version)
//!    plus its current frozen `ProfileSnapshot` selections, after which the
//!    WAL truncates — every logged batch is now inside a snapshot.
//! 3. **Recovery** ([`Store::recover`]): load each valid snapshot, replay
//!    the WAL tail through the exact live ingestion paths
//!    ([`Catalog::append_observations`], staged fresh loads), truncate a
//!    torn final record, and re-insert the recovered selections into the
//!    profile cache so the first post-restart query is a cache hit.
//!
//! Everything is hand-rolled (CRC-32, little-endian codec) — the crate has
//! no dependencies beyond `uu-core`/`uu-query`.

pub mod codec;
pub mod crc32;
pub mod record;
pub mod snapshot;
pub mod wal;

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::record::{Batch, WalRecord};
use crate::snapshot::{
    read_snapshot, snapshot_files, write_snapshot, SelectionData, TableSnapshot, UniverseData,
};
use crate::wal::Wal;
use uu_core::profile::ProfileSnapshot;
use uu_core::sample::SampleView;
use uu_query::catalog::Catalog;
use uu_query::exec::CachedSelection;
use uu_query::schema::{ColumnType, Schema};
use uu_query::table::IntegratedTable;

/// When WAL appends reach stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// `fsync` after every record: survives machine crashes, slowest.
    Always,
    /// `fsync` on flush points (checkpoint, shutdown): survives process
    /// kills always, machine crashes up to the last flush. The default.
    #[default]
    Batch,
    /// Never `fsync`: survives process kills (the page cache outlives the
    /// process), nothing more.
    Off,
}

impl FsyncPolicy {
    /// Wire/flag spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            FsyncPolicy::Always => "always",
            FsyncPolicy::Batch => "batch",
            FsyncPolicy::Off => "off",
        }
    }

    /// Parses the flag spelling.
    pub fn parse(s: &str) -> Option<FsyncPolicy> {
        match s.to_ascii_lowercase().as_str() {
            "always" => Some(FsyncPolicy::Always),
            "batch" => Some(FsyncPolicy::Batch),
            "off" | "never" => Some(FsyncPolicy::Off),
            _ => None,
        }
    }
}

impl std::fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Errors raised by the durability layer.
#[derive(Debug)]
pub enum StoreError {
    /// An I/O failure talking to the data directory.
    Io(std::io::Error),
    /// Data that passed the CRC but failed to decode or apply — real
    /// corruption (or a foreign file), never a torn write.
    Corrupt(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "storage I/O error: {e}"),
            StoreError::Corrupt(msg) => write!(f, "storage corruption: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// Monotone storage counters, exposed through the server's `stats` verb.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StorageStats {
    /// WAL records appended since startup.
    pub wal_records: u64,
    /// Framed WAL bytes appended since startup.
    pub wal_bytes: u64,
    /// `fsync`/`fdatasync` calls issued (WAL + snapshot files).
    pub fsyncs: u64,
    /// Checkpoints completed (threshold-triggered, explicit, or shutdown).
    pub checkpoints: u64,
    /// Tables restored from snapshots at startup.
    pub recovered_tables: u64,
    /// WAL records replayed at startup (applied or recognized as already
    /// inside a snapshot).
    pub replayed_records: u64,
    /// Torn tail bytes truncated from the WAL at startup.
    pub truncated_tail_bytes: u64,
}

/// What [`Store::recover`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecoveryReport {
    /// Tables restored from snapshot files.
    pub tables: u64,
    /// WAL records replayed.
    pub replayed_records: u64,
    /// Torn tail bytes truncated from the WAL.
    pub truncated_tail_bytes: u64,
}

/// The durable catalog store: one data directory holding the observation
/// WAL and one snapshot file per table. All mutating entry points are
/// called while the caller holds the catalog lock (the service layer's
/// write lock for logging, any lock for checkpointing), which is what
/// serializes WAL order against catalog mutation order.
pub struct Store {
    dir: PathBuf,
    policy: FsyncPolicy,
    checkpoint_rows: u64,
    checkpoint_bytes: u64,
    wal: Mutex<Wal>,
    /// WAL payloads scanned at open, consumed by [`Store::recover`].
    pending_replay: Mutex<Vec<Vec<u8>>>,
    last_checkpoint: Mutex<Option<Instant>>,
    rows_since_checkpoint: AtomicU64,
    wal_records: AtomicU64,
    wal_bytes: AtomicU64,
    snapshot_fsyncs: AtomicU64,
    checkpoints: AtomicU64,
    recovered_tables: AtomicU64,
    replayed_records: AtomicU64,
    truncated_tail_bytes: AtomicU64,
}

impl Store {
    /// Opens (creating if needed) the data directory, scans the WAL, and
    /// truncates any torn tail. Follow with [`Store::recover`] before
    /// serving.
    pub fn open(
        dir: impl Into<PathBuf>,
        policy: FsyncPolicy,
        checkpoint_rows: u64,
        checkpoint_bytes: u64,
    ) -> Result<Store, StoreError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let wal_path = dir.join("observations.wal");
        let scan = wal::scan(&wal_path)?;
        let wal = Wal::open(&wal_path, policy, scan.valid_len)?;
        Ok(Store {
            dir,
            policy,
            checkpoint_rows: checkpoint_rows.max(1),
            checkpoint_bytes: checkpoint_bytes.max(1),
            wal: Mutex::new(wal),
            pending_replay: Mutex::new(scan.payloads),
            last_checkpoint: Mutex::new(None),
            rows_since_checkpoint: AtomicU64::new(0),
            wal_records: AtomicU64::new(0),
            wal_bytes: AtomicU64::new(0),
            snapshot_fsyncs: AtomicU64::new(0),
            checkpoints: AtomicU64::new(0),
            recovered_tables: AtomicU64::new(0),
            replayed_records: AtomicU64::new(0),
            truncated_tail_bytes: AtomicU64::new(scan.torn_bytes),
        })
    }

    /// The data directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The configured fsync policy.
    pub fn policy(&self) -> FsyncPolicy {
        self.policy
    }

    /// Rebuilds `catalog` from the newest valid snapshot per table plus the
    /// WAL tail. Snapshot selections re-enter the profile cache keyed at
    /// the restored table's fresh instance id; WAL appends then replay
    /// through [`Catalog::append_observations`], whose re-freeze loop
    /// carries those selections forward to the final version — exactly as
    /// the live path did.
    pub fn recover(&self, catalog: &mut Catalog) -> Result<RecoveryReport, StoreError> {
        for path in snapshot_files(&self.dir)? {
            let snap = read_snapshot(&path)?;
            let schema = Schema::new(snap.columns.clone());
            let table = IntegratedTable::restore(
                snap.name.clone(),
                schema,
                &snap.key_column,
                snap.entities,
                snap.version,
            )
            .map_err(|e| StoreError::Corrupt(format!("snapshot {}: {e}", path.display())))?;
            let selections = snap
                .selections
                .into_iter()
                .map(|sel| {
                    let snapshots = sel
                        .universes
                        .into_iter()
                        .map(|u| {
                            let view = SampleView::from_observed_items(u.items);
                            (
                                u.group,
                                ProfileSnapshot::capture_presorted(view, u.sorted_idx),
                            )
                        })
                        .collect();
                    CachedSelection::from_parts(
                        sel.column,
                        sel.predicate,
                        sel.group_by,
                        sel.mask,
                        snapshots,
                    )
                })
                .collect();
            catalog
                .restore_table(table, selections)
                .map_err(|e| StoreError::Corrupt(format!("snapshot {}: {e}", path.display())))?;
            self.recovered_tables.fetch_add(1, Ordering::Relaxed);
        }

        let payloads = std::mem::take(&mut *self.pending_replay.lock().expect("replay lock"));
        let mut replayed = 0u64;
        let mut rows = 0u64;
        for payload in &payloads {
            let record = WalRecord::decode(payload)?;
            rows += record.rows();
            match record {
                WalRecord::FreshLoad {
                    table,
                    columns,
                    entity_column,
                    batch,
                } => {
                    // Already present ⇒ the load is inside the snapshot (a
                    // crash landed between the snapshot rename and the WAL
                    // truncate) — skip. Otherwise replay exactly like the
                    // live path: stage, insert, register only on success
                    // (a failure was rejected live too, deterministically).
                    if catalog.get(&table).is_none() {
                        if let Ok(mut staged) =
                            IntegratedTable::new(&table, Schema::new(columns), &entity_column)
                        {
                            let clean = batch.into_iter().all(|(src, values)| {
                                staged.insert_observation(src, values).is_ok()
                            });
                            if clean {
                                let _ = catalog.register(staged);
                            }
                        }
                    }
                    replayed += 1;
                }
                WalRecord::Append {
                    table,
                    version_before,
                    batch,
                } => {
                    let version = catalog.get(&table).map(|t| t.version());
                    match version {
                        None => {
                            return Err(StoreError::Corrupt(format!(
                                "WAL appends to unknown table {table:?}"
                            )))
                        }
                        // Inside the snapshot already.
                        Some(v) if version_before < v => {}
                        Some(v) if version_before == v => {
                            // An apply error replays the live outcome: the
                            // batch was rejected then too, with no mutation.
                            let _ = catalog.append_observations(&table, batch);
                        }
                        Some(v) => {
                            return Err(StoreError::Corrupt(format!(
                                "WAL gap for table {table:?}: log resumes at version \
                                 {version_before}, table recovered at {v}"
                            )))
                        }
                    }
                    replayed += 1;
                }
            }
        }
        self.replayed_records.store(replayed, Ordering::Relaxed);
        self.rows_since_checkpoint.store(rows, Ordering::Relaxed);
        Ok(RecoveryReport {
            tables: self.recovered_tables.load(Ordering::Relaxed),
            replayed_records: replayed,
            truncated_tail_bytes: self.truncated_tail_bytes.load(Ordering::Relaxed),
        })
    }

    fn log(&self, payload: Vec<u8>) -> Result<(), StoreError> {
        let mut wal = self.wal.lock().expect("wal lock");
        let bytes = wal.append(&payload)?;
        self.wal_records.fetch_add(1, Ordering::Relaxed);
        self.wal_bytes.fetch_add(bytes, Ordering::Relaxed);
        Ok(())
    }

    /// Logs a committed fresh `load_csv` batch. Call under the catalog
    /// write lock, after validation, before registration.
    pub fn log_fresh(
        &self,
        table: &str,
        columns: &[(String, ColumnType)],
        entity_column: &str,
        batch: &Batch,
    ) -> Result<(), StoreError> {
        self.log(record::encode_fresh(table, columns, entity_column, batch))
    }

    /// Logs an append batch at its version watermark. Call under the
    /// catalog write lock, before [`Catalog::append_observations`].
    pub fn log_append(
        &self,
        table: &str,
        version_before: u64,
        batch: &Batch,
    ) -> Result<(), StoreError> {
        self.log(record::encode_append(table, version_before, batch))
    }

    /// Writes a snapshot of every table (rows, lineage, version, current
    /// frozen selections), then truncates the WAL — its records are all
    /// inside the snapshots now. Returns `(tables, bytes written)`. The
    /// caller must hold the catalog lock (read suffices: appends take the
    /// write lock, so no record can land between the snapshots and the
    /// truncate).
    pub fn checkpoint(&self, catalog: &Catalog) -> Result<(u64, u64), StoreError> {
        let mut tables = 0u64;
        let mut bytes = 0u64;
        for table in catalog.tables() {
            let selections = catalog.export_selections(table.name());
            let snap = TableSnapshot {
                key: table.name().to_ascii_lowercase(),
                name: table.name().to_string(),
                columns: table
                    .schema()
                    .columns()
                    .iter()
                    .map(|c| (c.name.clone(), c.ty))
                    .collect(),
                key_column: table.key_column().to_string(),
                version: table.version(),
                entities: table
                    .entities()
                    .map(|e| (e.record.values().to_vec(), e.source_counts.clone()))
                    .collect(),
                selections: selections
                    .iter()
                    .map(|sel| SelectionData {
                        column: sel.column().map(str::to_string),
                        predicate: sel.predicate().clone(),
                        group_by: sel.group_by().map(str::to_string),
                        mask: sel.mask().to_vec(),
                        universes: sel
                            .iter()
                            .map(|(group, snapshot)| UniverseData {
                                group: group.clone(),
                                items: snapshot.view().items().to_vec(),
                                sorted_idx: snapshot.sorted_indices().to_vec(),
                            })
                            .collect(),
                    })
                    .collect(),
            };
            let (written, syncs) = write_snapshot(&self.dir, &snap, self.policy)?;
            self.snapshot_fsyncs.fetch_add(syncs, Ordering::Relaxed);
            tables += 1;
            bytes += written;
        }
        self.wal.lock().expect("wal lock").truncate()?;
        self.rows_since_checkpoint.store(0, Ordering::Relaxed);
        *self.last_checkpoint.lock().expect("checkpoint lock") = Some(Instant::now());
        self.checkpoints.fetch_add(1, Ordering::Relaxed);
        Ok((tables, bytes))
    }

    /// Counts `rows_added` toward the checkpoint thresholds and runs a
    /// checkpoint when the row or WAL-byte threshold is crossed. Returns
    /// whether one ran.
    pub fn maybe_checkpoint(&self, catalog: &Catalog, rows_added: u64) -> Result<bool, StoreError> {
        let rows = self
            .rows_since_checkpoint
            .fetch_add(rows_added, Ordering::Relaxed)
            + rows_added;
        let wal_len = self.wal.lock().expect("wal lock").len();
        if rows >= self.checkpoint_rows || wal_len >= self.checkpoint_bytes {
            self.checkpoint(catalog)?;
            return Ok(true);
        }
        Ok(false)
    }

    /// Syncs pending WAL writes (a no-op under [`FsyncPolicy::Off`]).
    pub fn flush(&self) -> Result<(), StoreError> {
        self.wal.lock().expect("wal lock").sync()?;
        Ok(())
    }

    /// Time since the last completed checkpoint in this process.
    pub fn last_checkpoint_age(&self) -> Option<Duration> {
        self.last_checkpoint
            .lock()
            .expect("checkpoint lock")
            .map(|at| at.elapsed())
    }

    /// The monotone storage counters.
    pub fn stats(&self) -> StorageStats {
        let wal_syncs = self.wal.lock().expect("wal lock").syncs();
        StorageStats {
            wal_records: self.wal_records.load(Ordering::Relaxed),
            wal_bytes: self.wal_bytes.load(Ordering::Relaxed),
            fsyncs: wal_syncs + self.snapshot_fsyncs.load(Ordering::Relaxed),
            checkpoints: self.checkpoints.load(Ordering::Relaxed),
            recovered_tables: self.recovered_tables.load(Ordering::Relaxed),
            replayed_records: self.replayed_records.load(Ordering::Relaxed),
            truncated_tail_bytes: self.truncated_tail_bytes.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uu_query::predicate::Predicate;
    use uu_query::value::Value;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("uu-store-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn columns() -> Vec<(String, ColumnType)> {
        vec![
            ("company".to_string(), ColumnType::Str),
            ("employees".to_string(), ColumnType::Float),
        ]
    }

    fn batch(rows: &[(&str, f64)]) -> Batch {
        rows.iter()
            .map(|(name, emp)| (0u32, vec![Value::Str(name.to_string()), Value::Float(*emp)]))
            .collect()
    }

    fn load_live(catalog: &mut Catalog, store: &Store, rows: &[(&str, f64)]) {
        let batch = batch(rows);
        let mut staged =
            IntegratedTable::new("companies", Schema::new(columns()), "company").unwrap();
        for (src, values) in &batch {
            staged.insert_observation(*src, values.clone()).unwrap();
        }
        store
            .log_fresh("companies", &columns(), "company", &batch)
            .unwrap();
        catalog.register(staged).unwrap();
    }

    fn append_live(catalog: &mut Catalog, store: &Store, rows: &[(&str, f64)]) {
        let batch = batch(rows);
        let version = catalog.get("companies").unwrap().version();
        store.log_append("companies", version, &batch).unwrap();
        catalog.append_observations("companies", batch).unwrap();
    }

    const SQL: &str = "SELECT SUM(employees) FROM companies";

    fn results(catalog: &Catalog) -> String {
        format!(
            "{:?}",
            catalog
                .execute_sql_cached(SQL, uu_query::exec::CorrectionMethod::Bucket)
                .unwrap()
        )
    }

    #[test]
    fn wal_only_recovery_replays_every_batch() {
        let dir = scratch("wal-only");
        let store = Store::open(&dir, FsyncPolicy::Off, u64::MAX, u64::MAX).unwrap();
        let mut catalog = Catalog::new();
        load_live(&mut catalog, &store, &[("a", 1.0), ("b", 2.0)]);
        append_live(&mut catalog, &store, &[("c", 3.0)]);
        append_live(&mut catalog, &store, &[("a", 1.0), ("d", 4.0)]);
        let want = results(&catalog);

        let reopened = Store::open(&dir, FsyncPolicy::Off, u64::MAX, u64::MAX).unwrap();
        let mut recovered = Catalog::new();
        let report = reopened.recover(&mut recovered).unwrap();
        assert_eq!(report.tables, 0);
        assert_eq!(report.replayed_records, 3);
        assert_eq!(report.truncated_tail_bytes, 0);
        assert_eq!(
            recovered.get("companies").unwrap().version(),
            catalog.get("companies").unwrap().version()
        );
        assert_eq!(results(&recovered), want);
    }

    #[test]
    fn checkpoint_truncates_the_wal_and_rewarms_the_cache() {
        let dir = scratch("checkpoint");
        let store = Store::open(&dir, FsyncPolicy::Off, u64::MAX, u64::MAX).unwrap();
        let mut catalog = Catalog::new();
        load_live(&mut catalog, &store, &[("a", 1.0), ("b", 2.0)]);
        // Warm the cache so the checkpoint has a selection to carry.
        let _ = results(&catalog);
        let (tables, bytes) = store.checkpoint(&catalog).unwrap();
        assert_eq!(tables, 1);
        assert!(bytes > 0);
        append_live(&mut catalog, &store, &[("c", 3.0)]);
        let want = results(&catalog);

        let reopened = Store::open(&dir, FsyncPolicy::Off, u64::MAX, u64::MAX).unwrap();
        let mut recovered = Catalog::new();
        let report = reopened.recover(&mut recovered).unwrap();
        assert_eq!(report.tables, 1);
        assert_eq!(report.replayed_records, 1);
        // The snapshot selection was re-keyed and re-frozen through the
        // replayed append: the first query is a cache hit.
        let (_, hit) = recovered.selection_sql(SQL).expect("recovered query plans");
        assert!(hit, "first post-recovery query must hit the warmed cache");
        assert_eq!(results(&recovered), want);
        // Clean-shutdown shape: checkpoint again, restart replays nothing.
        store.checkpoint(&catalog).unwrap();
        let clean = Store::open(&dir, FsyncPolicy::Off, u64::MAX, u64::MAX).unwrap();
        let mut clean_catalog = Catalog::new();
        let report = clean.recover(&mut clean_catalog).unwrap();
        assert_eq!(report.replayed_records, 0);
        assert_eq!(results(&clean_catalog), want);
    }

    #[test]
    fn grouped_and_predicated_selections_survive_a_round_trip() {
        let dir = scratch("grouped");
        let store = Store::open(&dir, FsyncPolicy::Off, u64::MAX, u64::MAX).unwrap();
        let mut catalog = Catalog::new();
        let cols = vec![
            ("company".to_string(), ColumnType::Str),
            ("employees".to_string(), ColumnType::Float),
            ("state".to_string(), ColumnType::Str),
        ];
        let batch: Batch = [
            ("A", 1000.0, "CA"),
            ("B", 2000.0, "CA"),
            ("D", 10_000.0, "WA"),
            ("D", 10_000.0, "WA"),
        ]
        .iter()
        .map(|(n, e, s)| {
            (
                0u32,
                vec![
                    Value::Str(n.to_string()),
                    Value::Float(*e),
                    Value::Str(s.to_string()),
                ],
            )
        })
        .collect();
        let mut staged =
            IntegratedTable::new("companies", Schema::new(cols.clone()), "company").unwrap();
        for (src, values) in &batch {
            staged.insert_observation(*src, values.clone()).unwrap();
        }
        store
            .log_fresh("companies", &cols, "company", &batch)
            .unwrap();
        catalog.register(staged).unwrap();
        let grouped_sql =
            "SELECT SUM(employees) FROM companies WHERE employees > 100 GROUP BY state";
        let want = format!(
            "{:?}",
            catalog
                .execute_sql_grouped_cached(grouped_sql, uu_query::exec::CorrectionMethod::Bucket)
                .unwrap()
        );
        store.checkpoint(&catalog).unwrap();

        let reopened = Store::open(&dir, FsyncPolicy::Off, u64::MAX, u64::MAX).unwrap();
        let mut recovered = Catalog::new();
        reopened.recover(&mut recovered).unwrap();
        let (_, hit) = recovered.selection_sql(grouped_sql).unwrap();
        assert!(hit);
        let got = format!(
            "{:?}",
            recovered
                .execute_sql_grouped_cached(grouped_sql, uu_query::exec::CorrectionMethod::Bucket)
                .unwrap()
        );
        assert_eq!(got, want);
        // The ungrouped full-table selection was never cached pre-restart,
        // so it misses — recovery must not invent cache entries.
        let (_, hit) = recovered.selection_sql(SQL).unwrap();
        assert!(!hit);
        let _ = Predicate::True; // keep the import honest under cfg(test)
    }

    #[test]
    fn counters_track_the_lifecycle() {
        let dir = scratch("counters");
        let store = Store::open(&dir, FsyncPolicy::Batch, u64::MAX, u64::MAX).unwrap();
        let mut catalog = Catalog::new();
        load_live(&mut catalog, &store, &[("a", 1.0)]);
        append_live(&mut catalog, &store, &[("b", 2.0)]);
        store.flush().unwrap();
        let stats = store.stats();
        assert_eq!(stats.wal_records, 2);
        assert!(stats.wal_bytes > 0);
        assert!(stats.fsyncs >= 1);
        assert_eq!(stats.checkpoints, 0);
        assert!(store.last_checkpoint_age().is_none());
        store.checkpoint(&catalog).unwrap();
        let stats = store.stats();
        assert_eq!(stats.checkpoints, 1);
        assert!(store.last_checkpoint_age().is_some());
    }
}
