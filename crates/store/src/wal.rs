//! The append-only observation WAL file.
//!
//! Framing is `[u32 payload length][u32 CRC-32 of payload][payload]`,
//! little-endian. Appends go through plain `write_all` with no userspace
//! buffering: once the syscall returns, the bytes are in the page cache and
//! survive a SIGKILL of the process — only a machine crash needs the fsync
//! the [`FsyncPolicy`] governs. A torn final frame (length or CRC mismatch,
//! or fewer bytes than the length promises) marks the end of the valid
//! prefix; [`scan`] reports it and recovery physically truncates it away.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::crc32::crc32;
use crate::FsyncPolicy;

/// Frame header: `u32` length + `u32` CRC.
pub const FRAME_HEADER_BYTES: u64 = 8;

/// What a WAL scan found: the CRC-valid frame payloads in order, the byte
/// length of that valid prefix, and how many torn tail bytes follow it.
pub struct WalScan {
    /// Payloads of every valid frame, in append order.
    pub payloads: Vec<Vec<u8>>,
    /// File offset where the valid prefix ends.
    pub valid_len: u64,
    /// Bytes after the valid prefix (a torn final record, or garbage).
    pub torn_bytes: u64,
}

/// Reads every valid frame from the WAL at `path`. A missing file scans as
/// empty. The scan stops at the first length/CRC mismatch — everything
/// after it is a torn write to truncate, never an error.
pub fn scan(path: &Path) -> std::io::Result<WalScan> {
    let bytes = match std::fs::read(path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e),
    };
    let mut payloads = Vec::new();
    let mut pos = 0usize;
    loop {
        let rest = bytes.len() - pos;
        if rest < FRAME_HEADER_BYTES as usize {
            break;
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("4 bytes"));
        let body_start = pos + FRAME_HEADER_BYTES as usize;
        if len > bytes.len() - body_start {
            break;
        }
        let payload = &bytes[body_start..body_start + len];
        if crc32(payload) != crc {
            break;
        }
        payloads.push(payload.to_vec());
        pos = body_start + len;
    }
    Ok(WalScan {
        payloads,
        valid_len: pos as u64,
        torn_bytes: (bytes.len() - pos) as u64,
    })
}

/// The open, append-position WAL file.
pub struct Wal {
    file: File,
    path: PathBuf,
    policy: FsyncPolicy,
    len: u64,
    dirty: bool,
    syncs: u64,
}

impl Wal {
    /// Opens (creating if absent) the WAL at `path`, truncating it to
    /// `valid_len` first when a scan found a torn tail.
    pub fn open(path: &Path, policy: FsyncPolicy, valid_len: u64) -> std::io::Result<Wal> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let actual = file.metadata()?.len();
        if actual > valid_len {
            file.set_len(valid_len)?;
        }
        file.seek(SeekFrom::End(0))?;
        Ok(Wal {
            file,
            path: path.to_path_buf(),
            policy,
            len: valid_len.min(actual),
            dirty: false,
            syncs: 0,
        })
    }

    /// Appends one framed record; under [`FsyncPolicy::Always`] the write is
    /// synced before returning. Returns the framed byte count.
    pub fn append(&mut self, payload: &[u8]) -> std::io::Result<u64> {
        let mut frame = Vec::with_capacity(payload.len() + FRAME_HEADER_BYTES as usize);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        self.file.write_all(&frame)?;
        self.len += frame.len() as u64;
        self.dirty = true;
        if self.policy == FsyncPolicy::Always {
            self.sync()?;
        }
        Ok(frame.len() as u64)
    }

    /// Syncs pending writes to stable storage, honouring the policy
    /// ([`FsyncPolicy::Off`] never syncs).
    pub fn sync(&mut self) -> std::io::Result<()> {
        if self.dirty && self.policy != FsyncPolicy::Off {
            self.file.sync_data()?;
            self.syncs += 1;
            self.dirty = false;
        }
        Ok(())
    }

    /// Empties the log — called right after a checkpoint made every logged
    /// batch redundant.
    pub fn truncate(&mut self) -> std::io::Result<()> {
        self.file.set_len(0)?;
        self.file.seek(SeekFrom::Start(0))?;
        self.len = 0;
        self.dirty = false;
        if self.policy != FsyncPolicy::Off {
            self.file.sync_all()?;
            self.syncs += 1;
        }
        Ok(())
    }

    /// Current log length in bytes.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Syncs performed so far.
    pub fn syncs(&self) -> u64 {
        self.syncs
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Re-reads the whole file (tests and diagnostics).
    pub fn read_bytes(&mut self) -> std::io::Result<Vec<u8>> {
        self.file.seek(SeekFrom::Start(0))?;
        let mut bytes = Vec::new();
        self.file.read_to_end(&mut bytes)?;
        self.file.seek(SeekFrom::End(0))?;
        Ok(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("uu-wal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn frames_round_trip_through_scan() {
        let path = scratch("roundtrip.wal");
        let _ = std::fs::remove_file(&path);
        let mut wal = Wal::open(&path, FsyncPolicy::Off, 0).unwrap();
        wal.append(b"first").unwrap();
        wal.append(b"").unwrap();
        wal.append(b"third record, longer").unwrap();
        let scan = scan(&path).unwrap();
        assert_eq!(
            scan.payloads,
            vec![
                b"first".to_vec(),
                Vec::new(),
                b"third record, longer".to_vec()
            ]
        );
        assert_eq!(scan.valid_len, wal.len());
        assert_eq!(scan.torn_bytes, 0);
    }

    #[test]
    fn torn_tail_is_detected_at_every_offset_and_truncated_on_open() {
        let path = scratch("torn.wal");
        let _ = std::fs::remove_file(&path);
        let mut wal = Wal::open(&path, FsyncPolicy::Off, 0).unwrap();
        wal.append(b"committed").unwrap();
        let prefix = wal.len();
        wal.append(b"the final record").unwrap();
        let full = std::fs::read(&path).unwrap();
        for cut in prefix as usize..full.len() {
            let torn_path = scratch("torn-cut.wal");
            std::fs::write(&torn_path, &full[..cut]).unwrap();
            let s = scan(&torn_path).unwrap();
            assert_eq!(s.payloads, vec![b"committed".to_vec()], "cut at {cut}");
            assert_eq!(s.valid_len, prefix);
            assert_eq!(s.torn_bytes, cut as u64 - prefix);
            // Re-opening truncates the torn bytes away.
            let reopened = Wal::open(&torn_path, FsyncPolicy::Off, s.valid_len).unwrap();
            assert_eq!(reopened.len(), prefix);
            assert_eq!(std::fs::metadata(&torn_path).unwrap().len(), prefix);
        }
    }

    #[test]
    fn corrupt_crc_ends_the_valid_prefix() {
        let path = scratch("crc.wal");
        let _ = std::fs::remove_file(&path);
        let mut wal = Wal::open(&path, FsyncPolicy::Off, 0).unwrap();
        wal.append(b"good").unwrap();
        let keep = wal.len();
        wal.append(b"flipped").unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let s = scan(&path).unwrap();
        assert_eq!(s.payloads, vec![b"good".to_vec()]);
        assert_eq!(s.valid_len, keep);
        assert!(s.torn_bytes > 0);
    }

    #[test]
    fn truncate_empties_the_log() {
        let path = scratch("trunc.wal");
        let _ = std::fs::remove_file(&path);
        let mut wal = Wal::open(&path, FsyncPolicy::Batch, 0).unwrap();
        wal.append(b"x").unwrap();
        wal.sync().unwrap();
        assert!(wal.syncs() >= 1);
        wal.truncate().unwrap();
        assert!(wal.is_empty());
        assert_eq!(std::fs::metadata(&path).unwrap().len(), 0);
        // Appends continue normally after a truncate.
        wal.append(b"y").unwrap();
        assert_eq!(scan(&path).unwrap().payloads, vec![b"y".to_vec()]);
    }
}
