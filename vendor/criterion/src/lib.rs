//! Minimal offline stand-in for the `criterion` benchmark harness.
//!
//! Implements exactly the surface the benches in `crates/bench/benches/`
//! use: [`Criterion::benchmark_group`], `sample_size`, `bench_function`,
//! [`Bencher::iter`], and the [`criterion_group!`]/[`criterion_main!`]
//! macros. Each benchmark runs `sample_size` timed iterations (after one
//! warm-up call) and prints the mean and minimum wall-clock time per
//! iteration. There is no statistical analysis, HTML report, or CLI — the
//! point is that `cargo bench` builds and produces honest numbers without
//! registry access.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Top-level benchmark driver, passed to every `criterion_group!` target.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
        }
    }
}

/// A group of benchmarks sharing a name prefix and a sample size.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed iterations each benchmark records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark: `f` receives a [`Bencher`] and must call
    /// [`Bencher::iter`] with the routine under measurement.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        let (mean, min) = bencher.summary();
        println!(
            "{}/{id}: mean {mean:>12.3?}  min {min:>12.3?}  ({} samples)",
            self.name,
            bencher.samples.len()
        );
        self
    }

    /// Ends the group (no-op beyond matching criterion's API).
    pub fn finish(self) {}
}

/// Times the routine under measurement.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Runs `routine` once as warm-up, then `sample_size` timed times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        std_black_box(routine());
        self.samples.reserve(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std_black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    fn summary(&self) -> (Duration, Duration) {
        if self.samples.is_empty() {
            return (Duration::ZERO, Duration::ZERO);
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = self.samples.iter().min().copied().unwrap_or_default();
        (mean, min)
    }
}

/// Declares a function that runs each listed benchmark target.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` to run each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_times() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut calls = 0u32;
        group.bench_function("count_calls", |b| b.iter(|| calls += 1));
        group.finish();
        // One warm-up + three timed samples.
        assert_eq!(calls, 4);
    }
}
