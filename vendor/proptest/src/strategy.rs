//! Value-generation strategies.

use crate::test_runner::TestRng;
use std::ops::Range;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($name:ident),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A, B);
    (A, B, C);
    (A, B, C, D);
}

/// Uniform `bool` (see [`crate::bool::ANY`]).
#[derive(Debug, Clone, Copy)]
pub struct BoolAny;

impl Strategy for BoolAny {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.bool()
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `len`.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

/// Anything accepted as the size argument of [`vec`]: a `usize` for an exact
/// length or a `Range<usize>` for a drawn one.
pub trait IntoSizeRange {
    /// The half-open length range.
    fn into_size_range(self) -> Range<usize>;
}

impl IntoSizeRange for Range<usize> {
    fn into_size_range(self) -> Range<usize> {
        self
    }
}

impl IntoSizeRange for usize {
    fn into_size_range(self) -> Range<usize> {
        self..self + 1
    }
}

/// Generates vectors of `element` values with length in `len`.
pub fn vec<S: Strategy>(element: S, len: impl IntoSizeRange) -> VecStrategy<S> {
    let len = len.into_size_range();
    assert!(len.start < len.end, "empty length range");
    VecStrategy { element, len }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.len.generate(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

// ---------------------------------------------------------------------------
// String strategies from a regex subset
// ---------------------------------------------------------------------------

/// A string literal is a strategy over a character-class subset of regex:
/// sequences of literal characters or classes `[a-z0-9_]`, each optionally
/// quantified with `*`, `+`, `?`, `{n}` or `{m,n}`. Unbounded quantifiers are
/// capped at 16 repetitions.
impl Strategy for str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for (chars, lo, hi) in &atoms {
            let reps = *lo + rng.below((*hi - *lo + 1) as u64) as usize;
            for _ in 0..reps {
                out.push(chars[rng.below(chars.len() as u64) as usize]);
            }
        }
        out
    }
}

/// One parsed atom: candidate characters and repetition bounds.
type Atom = (Vec<char>, usize, usize);

const UNBOUNDED_CAP: usize = 16;

fn parse_pattern(pattern: &str) -> Vec<Atom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let candidates = match chars[i] {
            '[' => {
                let (set, next) = parse_class(&chars, i + 1, pattern);
                i = next;
                set
            }
            '\\' => {
                i += 1;
                let c = *chars
                    .get(i)
                    .unwrap_or_else(|| unsupported(pattern, "trailing backslash"));
                i += 1;
                vec![unescape(c)]
            }
            '.' | '(' | ')' | '|' | '^' | '$' => unsupported(pattern, "regex operator"),
            c => {
                i += 1;
                vec![c]
            }
        };
        let (lo, hi) = parse_quantifier(&chars, &mut i, pattern);
        atoms.push((candidates, lo, hi));
    }
    atoms
}

fn parse_class(chars: &[char], mut i: usize, pattern: &str) -> (Vec<char>, usize) {
    let mut set = Vec::new();
    while i < chars.len() && chars[i] != ']' {
        let c = if chars[i] == '\\' {
            i += 1;
            unescape(
                *chars
                    .get(i)
                    .unwrap_or_else(|| unsupported(pattern, "trailing backslash in class")),
            )
        } else {
            chars[i]
        };
        // `a-z` range (a `-` that isn't followed by a class member is literal).
        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
            let hi = chars[i + 2];
            assert!(c <= hi, "inverted class range in {pattern:?}");
            set.extend(c..=hi);
            i += 3;
        } else {
            set.push(c);
            i += 1;
        }
    }
    if i >= chars.len() {
        unsupported(pattern, "unterminated character class");
    }
    assert!(!set.is_empty(), "empty character class in {pattern:?}");
    (set, i + 1)
}

fn parse_quantifier(chars: &[char], i: &mut usize, pattern: &str) -> (usize, usize) {
    match chars.get(*i) {
        Some('*') => {
            *i += 1;
            (0, UNBOUNDED_CAP)
        }
        Some('+') => {
            *i += 1;
            (1, UNBOUNDED_CAP)
        }
        Some('?') => {
            *i += 1;
            (0, 1)
        }
        Some('{') => {
            let close = chars[*i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| unsupported(pattern, "unterminated quantifier"))
                + *i;
            let body: String = chars[*i + 1..close].iter().collect();
            *i = close + 1;
            let (lo, hi) = match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("quantifier lower bound"),
                    hi.trim().parse().expect("quantifier upper bound"),
                ),
                None => {
                    let n = body.trim().parse().expect("quantifier count");
                    (n, n)
                }
            };
            assert!(lo <= hi, "inverted quantifier in {pattern:?}");
            (lo, hi)
        }
        _ => (1, 1),
    }
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        other => other,
    }
}

fn unsupported(pattern: &str, what: &str) -> ! {
    panic!("pattern {pattern:?}: {what} is not supported by the proptest shim")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_test("strategy-tests")
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = rng();
        for _ in 0..500 {
            let f = (1.0f64..10.0).generate(&mut rng);
            assert!((1.0..10.0).contains(&f));
            let u = (1u64..6).generate(&mut rng);
            assert!((1..6).contains(&u));
            let i = (-1000i64..1000).generate(&mut rng);
            assert!((-1000..1000).contains(&i));
        }
    }

    #[test]
    fn tuples_and_vecs_compose() {
        let mut rng = rng();
        let v = vec((1.0f64..100.0, 1u64..6), 2..40).generate(&mut rng);
        assert!((2..40).contains(&v.len()));
        for (x, m) in v {
            assert!((1.0..100.0).contains(&x));
            assert!((1..6).contains(&m));
        }
    }

    #[test]
    fn identifier_pattern_shape() {
        let mut rng = rng();
        for _ in 0..200 {
            let s = "[a-z][a-z0-9_]{0,8}".generate(&mut rng);
            assert!((1..=9).contains(&s.len()), "{s:?}");
            let mut cs = s.chars();
            assert!(cs.next().unwrap().is_ascii_lowercase());
            assert!(cs.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
    }

    #[test]
    fn printable_class_with_escapes() {
        let mut rng = rng();
        for _ in 0..200 {
            let s = "[ -~\n\"]*".generate(&mut rng);
            assert!(s.len() <= UNBOUNDED_CAP);
            assert!(s.chars().all(|c| (' '..='~').contains(&c) || c == '\n'));
        }
    }

    #[test]
    fn literal_and_counted_quantifiers() {
        let mut rng = rng();
        let s = "ab{3}c?".generate(&mut rng);
        assert!(s.starts_with("abbb"));
        assert!(s.len() == 4 || s.len() == 5);
    }

    #[test]
    fn bool_any_produces_both() {
        let mut rng = rng();
        let vals: Vec<bool> = (0..100).map(|_| BoolAny.generate(&mut rng)).collect();
        assert!(vals.iter().any(|&b| b) && vals.iter().any(|&b| !b));
    }
}
