//! Test configuration, case outcomes, and the deterministic RNG.

/// How many accepted cases each property runs.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Number of generated cases that must pass (rejections don't count).
    pub cases: u32,
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 64 }
    }
}

impl Config {
    /// A config running exactly `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        Config {
            cases: cases.max(1),
        }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case's inputs don't fit the property (`prop_assume!`); it is
    /// discarded without counting.
    Reject(&'static str),
    /// An assertion failed; the whole test fails.
    Fail(String),
}

/// Deterministic splitmix64/xoshiro-style generator: reproducible across
/// platforms, seeded per test from the test's name (override the base seed
/// with the `PROPTEST_SEED` environment variable).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from the test name mixed with `PROPTEST_SEED` (default 0).
    pub fn for_test(name: &str) -> Self {
        let base: u64 = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ base;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h | 1 }
    }

    /// Next raw 64-bit value (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift bounded sampling (Lemire); bias is negligible for
        // test generation purposes.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform bool.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::for_test("x");
        let mut b = TestRng::for_test("x");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_test("y");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn below_stays_in_bounds() {
        let mut rng = TestRng::for_test("bounds");
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
            let u = rng.unit_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn config_defaults() {
        assert_eq!(Config::default().cases, 64);
        assert_eq!(Config::with_cases(10).cases, 10);
        assert_eq!(Config::with_cases(0).cases, 1);
    }
}
