//! Minimal offline stand-in for the `proptest` property-testing framework.
//!
//! Implements the surface used by this workspace's property tests:
//!
//! * the [`proptest!`] macro (with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header),
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`],
//! * strategies: numeric ranges (`0u64..100`), tuples of strategies,
//!   [`collection::vec`], [`bool::ANY`], and string-literal strategies over a
//!   character-class subset of regex syntax (`"[a-z][a-z0-9_]{0,8}"`).
//!
//! Cases are generated from a deterministic per-test seed (override with
//! `PROPTEST_SEED`), so failures are reproducible. There is no shrinking: a
//! failing case reports the assertion message and the case number.

pub mod strategy;
pub mod test_runner;

pub mod collection {
    //! Strategies for collections.
    pub use crate::strategy::{vec, VecStrategy};
}

pub mod bool {
    //! Strategies for `bool`.
    pub use crate::strategy::BoolAny;

    /// Generates `true` or `false` with equal probability.
    pub const ANY: BoolAny = BoolAny;
}

pub mod prelude {
    //! Everything the `proptest!` caller needs in scope.
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Declares property tests: each `fn name(arg in strategy, …) { body }` item
/// becomes a `#[test]` running `body` over generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (
        @with_config ($config:expr)
        $(
            $(#[$attr:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                let mut accepted: u32 = 0;
                let mut attempts: u32 = 0;
                while accepted < config.cases {
                    attempts += 1;
                    if attempts > config.cases.saturating_mul(16) {
                        panic!(
                            "proptest '{}': too many rejected cases ({} accepted of {} wanted)",
                            stringify!($name), accepted, config.cases
                        );
                    }
                    $(let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut rng);)+
                    let outcome = (|| -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    match outcome {
                        ::core::result::Result::Ok(()) => accepted += 1,
                        ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                        ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest '{}' failed on case {}: {}",
                                stringify!($name), accepted + 1, msg
                            );
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::test_runner::Config::default()) $($rest)*);
    };
}

/// Asserts inside a `proptest!` body; failure reports the generated case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}`", left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}`: {}", left, right, format!($($fmt)+)
        );
    }};
}

/// Discards the current case when its inputs don't fit the property.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}
