//! When can you stop paying for crowd answers?
//!
//! The paper's economics (Fig. 2: a near-perfect estimate "after only 350
//! crowd-answers", at ~$0.10 per answer) imply a stopping problem. This
//! example streams the tech-employment workload through an
//! `EstimateMonitor`: the stopping rule fires once coverage clears 80% and
//! the bucket estimate stabilises, and a bootstrap interval quantifies the
//! remaining uncertainty at the stopping point.
//!
//! Run with: `cargo run --release -p uu-examples --bin crowd_budget`

use uu_core::bootstrap::{bootstrap_interval, BootstrapConfig};
use uu_core::engine;
use uu_core::monitor::{EstimateMonitor, StoppingRule};
use uu_datagen::scenario::figure6;

fn main() {
    // A synthetic crowd: 10 workers enumerate a 100-item universe
    // (values 10..1000, true SUM = 50 500), 500 answers available in total.
    let scenario = figure6(10, 1.0, 1.0, 2024);
    let truth = scenario.population.ground_truth_sum();
    let cost_per_answer = 0.10; // dollars, the paper's AMT ballpark

    let rule = StoppingRule {
        min_coverage: 0.85,
        max_relative_change: 0.03,
        stable_checkpoints: 3,
    };
    let mut monitor = EstimateMonitor::new(engine::bucket_estimator(), 25, rule);

    println!("== crowdsourcing budget: stop when the estimate stabilises ==");
    println!("stopping rule: coverage >= 85%, estimate within 3% over 3 checkpoints");
    println!();
    println!(
        "{:>8} {:>12} {:>12} {:>10}",
        "answers", "observed", "estimate", "coverage"
    );

    let mut stopped = None;
    for (item, value, source) in scenario.stream() {
        if let Some(cp) = monitor.push(item, value, source) {
            println!(
                "{:>8} {:>12.0} {:>12} {:>9.0}%",
                cp.n,
                cp.observed,
                cp.estimate
                    .map(|e| format!("{e:.0}"))
                    .unwrap_or_else(|| "-".into()),
                cp.coverage.unwrap_or(0.0) * 100.0
            );
        }
        if monitor.should_stop() {
            stopped = Some(*monitor.latest().expect("checkpoint exists"));
            break;
        }
    }

    println!();
    match stopped {
        Some(cp) => {
            let estimate = cp.estimate.expect("stopping requires an estimate");
            println!(
                "STOP at {} answers (${:.2} spent; the full stream would cost ${:.2})",
                cp.n,
                cp.n as f64 * cost_per_answer,
                scenario.sample.len() as f64 * cost_per_answer
            );
            println!(
                "estimate {estimate:.0} vs ground truth {truth:.0} ({:+.1}%)",
                (estimate - truth) / truth * 100.0
            );
            // Quantify the remaining uncertainty at the stopping point.
            let view = monitor.current_view();
            if let Some(ci) = bootstrap_interval(
                &view,
                &engine::bucket_estimator(),
                BootstrapConfig::default(),
            ) {
                println!(
                    "90% bootstrap interval at stop: [{:.0}, {:.0}] (median {:.0})",
                    ci.lo, ci.hi, ci.median
                );
            }
        }
        None => println!("the stream ended before the stopping rule fired"),
    }
}
