//! Open-world SQL over an integrated table.
//!
//! Loads the simulated US-GDP crowdsourcing run into an `IntegratedTable`
//! (state names as entity keys, the 50 real 2015 GDP values) and issues SQL
//! with `CorrectionMethod::Auto`: the executor diagnoses the source
//! imbalance, picks the right estimator, and annotates the result with the
//! upper bound and MIN/MAX trust reports.
//!
//! Run with: `cargo run --release -p uu-examples --bin sql_open_world`

use uu_datagen::realworld::{us_gdp, US_STATE_GDP_2015_MUSD};
use uu_query::exec::{execute_sql, execute_sql_grouped, CorrectionMethod};
use uu_query::schema::{ColumnType, Schema};
use uu_query::table::IntegratedTable;
use uu_query::value::Value;

fn main() {
    let dataset = us_gdp(3);
    let schema = Schema::new([
        ("state", ColumnType::Str),
        ("gdp", ColumnType::Float),
        ("size_class", ColumnType::Str),
    ]);
    let mut table = IntegratedTable::new("us_states", schema, "state").expect("schema ok");

    // Feed the crowd answers into the table. Item ids index the population,
    // which was built from US_STATE_GDP_2015_MUSD in the same order.
    for (item, value, source) in dataset.stream() {
        let (name, _) = US_STATE_GDP_2015_MUSD[item as usize];
        let size_class = if value > 400_000.0 { "large" } else { "small" };
        table
            .insert_observation(
                source,
                vec![
                    Value::from(name),
                    Value::from(value),
                    Value::from(size_class),
                ],
            )
            .expect("valid row");
    }

    println!(
        "== open-world SQL over {} crowd answers ==",
        dataset.sample.len()
    );
    println!("ground truth SUM(gdp) = {:.0}", dataset.ground_truth_sum());
    println!();

    let queries = [
        "SELECT SUM(gdp) FROM us_states",
        "SELECT COUNT(*) FROM us_states",
        "SELECT AVG(gdp) FROM us_states",
        "SELECT MAX(gdp) FROM us_states",
        "SELECT MIN(gdp) FROM us_states",
        "SELECT SUM(gdp) FROM us_states WHERE gdp > 500000",
    ];
    for sql in queries {
        let r = execute_sql(&table, sql, CorrectionMethod::Auto).expect("query runs");
        println!("{sql}");
        print!("  observed = {:.1}", r.observed);
        match r.corrected {
            Some(c) => print!("   corrected[{}] = {:.1}", r.method, c),
            None => print!("   (no correction: {})", r.method),
        }
        if let Some(b) = r.upper_bound {
            print!("   upper-bound = {b:.1}");
        }
        if let Some(e) = r.extreme {
            print!(
                "   extreme = {}",
                if e.is_trusted() {
                    "TRUSTED"
                } else {
                    "not trusted"
                }
            );
        }
        println!();
        println!(
            "  sources = {}, max-share = {:.0}%, recommendation = {:?}",
            r.diagnostics.contributing_sources,
            r.diagnostics.max_source_share.unwrap_or(0.0) * 100.0,
            r.recommendation
        );
        println!();
    }

    // GROUP BY: one open-world-corrected aggregate per group — each group is
    // its own estimation universe (how many *large* states are we missing?).
    let sql = "SELECT SUM(gdp) FROM us_states GROUP BY size_class";
    println!("{sql}");
    for group in execute_sql_grouped(&table, sql, CorrectionMethod::Naive).expect("query runs") {
        println!(
            "  {} -> observed = {:.1}, corrected = {}",
            group.key,
            group.result.observed,
            group
                .result
                .corrected
                .map(|c| format!("{c:.1}"))
                .unwrap_or_else(|| "-".to_string()),
        );
    }
}
