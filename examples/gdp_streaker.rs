//! The US GDP experiment (Figure 5b): estimators under a streaker.
//!
//! One crowd worker reports 45 of the 50 states up front. Chao92-based
//! estimators see a flood of singletons and overestimate wildly; the
//! Monte-Carlo estimator, which replays the actual per-source sampling
//! process, stays reasonable. The diagnostics section shows how the §6.5
//! policy detects the streaker and routes to Monte-Carlo automatically.
//!
//! Run with: `cargo run --release -p uu-examples --bin gdp_streaker`

use uu_core::engine::{EstimationSession, EstimatorKind};
use uu_core::montecarlo::MonteCarloConfig;
use uu_core::recommend::{diagnose, recommend};
use uu_datagen::realworld::us_gdp;
use uu_examples::{fmt_opt, replay_checkpoints};

fn main() {
    let dataset = us_gdp(7);
    let truth = dataset.ground_truth_sum();
    println!("== {} ==", dataset.question);
    println!(
        "ground truth: ${:.0}M (sum of the 50 real 2015 state GDPs)",
        truth
    );
    println!("the first source reports 45 states before anyone else says a word");
    println!();

    let session = EstimationSession::new([
        EstimatorKind::Naive,
        EstimatorKind::Bucket,
        EstimatorKind::MonteCarlo(MonteCarloConfig::default()),
    ]);
    print!("{:>8} {:>14}", "answers", "observed");
    for name in session.names() {
        print!(" {name:>14}");
    }
    println!();

    let checkpoints: Vec<usize> = vec![20, 45, 60, 80, 100, 120];
    let views = replay_checkpoints(dataset.stream(), &checkpoints);
    for (n, view) in &views {
        print!("{:>8} {:>14.0}", n, view.observed_sum());
        for result in session.run(view) {
            print!(" {}", fmt_opt(result.corrected));
        }
        println!();
    }

    println!();
    if let Some((_, view)) = views.iter().find(|(n, _)| *n == 45) {
        let d = diagnose(view);
        println!(
            "at 45 answers: max source share = {:.0}%, gini = {:.2} -> streaker = {}",
            d.max_source_share.unwrap_or(0.0) * 100.0,
            d.source_gini.unwrap_or(0.0),
            d.has_streaker()
        );
        println!("policy recommendation: {:?}", recommend(view));
    }
}
