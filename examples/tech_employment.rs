//! The paper's running example (Figures 2 & 4): how many people does the US
//! tech industry employ?
//!
//! Streams simulated crowd answers and prints the observed SUM next to every
//! estimator's corrected SUM as answers accumulate. The shape to look for
//! (paper §6.1.1): naive and frequency overshoot, Monte-Carlo falls back
//! towards the observed curve, bucket lands closest to the ground truth.
//!
//! Run with: `cargo run --release -p uu-examples --bin tech_employment`

use uu_core::engine::EstimationSession;
use uu_core::montecarlo::MonteCarloConfig;
use uu_datagen::realworld::tech_employment;
use uu_examples::{even_checkpoints, fmt_opt, replay_checkpoints};

fn main() {
    let dataset = tech_employment(42);
    let truth = dataset.ground_truth_sum();
    println!("== {} ==", dataset.question);
    println!(
        "simulated ground truth: {:.0} employees across {} companies",
        truth,
        dataset.population.len()
    );
    println!();

    let session = EstimationSession::standard(MonteCarloConfig::default());
    print!("{:>8} {:>14}", "answers", "observed");
    for name in session.names() {
        print!(" {name:>14}");
    }
    println!();

    let checkpoints = even_checkpoints(50, dataset.sample.len());
    for (n, view) in replay_checkpoints(dataset.stream(), &checkpoints) {
        print!("{:>8} {:>14.0}", n, view.observed_sum());
        for result in session.run(&view) {
            print!(" {}", fmt_opt(result.corrected));
        }
        println!();
    }
    println!();
    println!("ground truth: {truth:>37.0}");
}
