//! The paper's running example (Figures 2 & 4): how many people does the US
//! tech industry employ?
//!
//! Streams simulated crowd answers and prints the observed SUM next to every
//! estimator's corrected SUM as answers accumulate. The shape to look for
//! (paper §6.1.1): naive and frequency overshoot, Monte-Carlo falls back
//! towards the observed curve, bucket lands closest to the ground truth.
//!
//! Run with: `cargo run --release -p uu-examples --bin tech_employment`

use uu_core::bucket::DynamicBucketEstimator;
use uu_core::estimate::SumEstimator;
use uu_core::frequency::FrequencyEstimator;
use uu_core::montecarlo::{MonteCarloConfig, MonteCarloEstimator};
use uu_core::naive::NaiveEstimator;
use uu_datagen::realworld::tech_employment;
use uu_examples::{even_checkpoints, fmt_opt, replay_checkpoints};

fn main() {
    let dataset = tech_employment(42);
    let truth = dataset.ground_truth_sum();
    println!("== {} ==", dataset.question);
    println!(
        "simulated ground truth: {:.0} employees across {} companies",
        truth,
        dataset.population.len()
    );
    println!();
    println!(
        "{:>8} {:>14} {:>14} {:>14} {:>14} {:>14}",
        "answers", "observed", "naive", "freq", "bucket", "monte-carlo"
    );

    let naive = NaiveEstimator::default();
    let freq = FrequencyEstimator::default();
    let bucket = DynamicBucketEstimator::default();
    let mc = MonteCarloEstimator::new(MonteCarloConfig::default());

    let checkpoints = even_checkpoints(50, dataset.sample.len());
    for (n, view) in replay_checkpoints(dataset.stream(), &checkpoints) {
        println!(
            "{:>8} {:>14.0} {} {} {} {}",
            n,
            view.observed_sum(),
            fmt_opt(naive.estimate_sum(&view)),
            fmt_opt(freq.estimate_sum(&view)),
            fmt_opt(bucket.estimate_sum(&view)),
            fmt_opt(mc.estimate_sum(&view)),
        );
    }
    println!();
    println!("ground truth: {truth:>37.0}");
}
