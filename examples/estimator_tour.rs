//! A tour of the estimators across the paper's three synthetic regimes
//! (Figure 6's rows): ideal (uniform publicity, no correlation), realistic
//! (skew + correlation) and rare-events (skew, no correlation).
//!
//! The printed error table reproduces §6.2's conclusions: everyone is fine in
//! the ideal regime, bucket wins in the realistic regime, and *everyone*
//! underestimates when rare items can carry any value (black swans).
//!
//! Run with: `cargo run --release -p uu-examples --bin estimator_tour`

use uu_core::engine::EstimationSession;
use uu_core::montecarlo::MonteCarloConfig;
use uu_datagen::scenario::figure6;
use uu_examples::replay_checkpoints;

fn main() {
    let regimes = [
        ("ideal      (lambda=0, rho=0)", 0.0, 0.0),
        ("realistic  (lambda=4, rho=1)", 4.0, 1.0),
        ("rare-event (lambda=4, rho=0)", 4.0, 0.0),
    ];
    let repetitions = 10;
    let w = 10; // ten crowd workers

    let session = EstimationSession::standard(MonteCarloConfig::default());
    let names = session.names();

    println!("== estimator tour: mean signed error vs ground truth (N=100, sum=50500) ==");
    println!("averaged over {repetitions} seeded runs, evaluated at 400 answers");
    println!();
    print!("{:<30} {:>12}", "regime", "observed");
    for name in &names {
        print!(" {name:>12}");
    }
    println!();

    for (label, lambda, rho) in regimes {
        let mut err = vec![0.0f64; 1 + names.len()]; // observed + estimators
        let mut defined = vec![0usize; 1 + names.len()];
        for rep in 0..repetitions {
            let scenario = figure6(w, lambda, rho, 1000 + rep);
            let truth = scenario.population.ground_truth_sum();
            let views = replay_checkpoints(scenario.stream(), &[400]);
            let (_, view) = &views[0];
            let estimates = std::iter::once(Some(view.observed_sum()))
                .chain(session.run(view).into_iter().map(|r| r.corrected));
            for (i, est) in estimates.enumerate() {
                if let Some(e) = est {
                    err[i] += e - truth;
                    defined[i] += 1;
                }
            }
        }
        print!("{label:<30}");
        for i in 0..err.len() {
            if defined[i] > 0 {
                print!(" {:>+12.0}", err[i] / defined[i] as f64);
            } else {
                print!(" {:>12}", "-");
            }
        }
        println!();
    }
    println!();
    println!("reading guide: 0 is perfect; negative = underestimate, positive = overestimate.");
}
