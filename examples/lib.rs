//! Shared plumbing for the runnable examples.
//!
//! Each example binary replays a data-integration stream into the estimators
//! and prints paper-style tables; the helpers here keep that replay logic in
//! one place.

pub use uu_core::sample::replay_checkpoints;

/// Evenly spaced checkpoints `step, 2·step, …` up to `max`.
pub fn even_checkpoints(step: usize, max: usize) -> Vec<usize> {
    (1..=max / step).map(|i| i * step).collect()
}

/// Formats an `Option<f64>` for table output.
pub fn fmt_opt(v: Option<f64>) -> String {
    match v {
        Some(x) => format!("{x:>14.1}"),
        None => format!("{:>14}", "-"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_hits_every_checkpoint() {
        let stream = (0..10u64).map(|i| (i % 4, i as f64, (i % 3) as u32));
        let views = replay_checkpoints(stream, &[2, 5, 10, 99]);
        assert_eq!(views.len(), 3);
        assert_eq!(views[0].0, 2);
        assert_eq!(views[0].1.n(), 2);
        assert_eq!(views[2].1.n(), 10);
    }

    #[test]
    fn even_checkpoints_shape() {
        assert_eq!(even_checkpoints(50, 200), vec![50, 100, 150, 200]);
        assert_eq!(even_checkpoints(50, 40), Vec::<usize>::new());
    }

    #[test]
    fn fmt_opt_handles_none() {
        assert!(fmt_opt(None).contains('-'));
        assert!(fmt_opt(Some(1.0)).contains("1.0"));
    }
}
