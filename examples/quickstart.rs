//! Quickstart: correct a SUM query for unknown unknowns.
//!
//! Builds the paper's toy integration scenario (Appendix F) by hand — five
//! data sources reporting US tech companies — and runs aggregate queries
//! with open-world correction through the SQL front-end.
//!
//! Run with: `cargo run -p uu-examples --bin quickstart`

use uu_query::exec::{execute_sql, CorrectionMethod};
use uu_query::schema::{ColumnType, Schema};
use uu_query::table::IntegratedTable;
use uu_query::value::Value;

fn main() {
    // One integrated table, entity-keyed by company name. Each observation
    // records which source mentioned the company (the lineage the estimators
    // feed on).
    let schema = Schema::new([
        ("company", ColumnType::Str),
        ("employees", ColumnType::Float),
    ]);
    let mut table =
        IntegratedTable::new("us_tech_companies", schema, "company").expect("key column exists");

    // Appendix F, after source s5: A seen by s1 & s5, B by s1 & s2,
    // D by s1..s4, E only by s5. The true universe also contains company C,
    // which no source mentions — the unknown unknown.
    let observations: [(u32, &str, f64); 9] = [
        (0, "A", 1000.0),
        (0, "B", 2000.0),
        (0, "D", 10_000.0),
        (1, "B", 2000.0),
        (1, "D", 10_000.0),
        (2, "D", 10_000.0),
        (3, "D", 10_000.0),
        (4, "A", 1000.0),
        (4, "E", 300.0),
    ];
    for (source, company, employees) in observations {
        table
            .insert_observation(source, vec![Value::from(company), Value::from(employees)])
            .expect("valid row");
    }

    let ground_truth = 1000.0 + 2000.0 + 900.0 + 10_000.0 + 300.0; // incl. hidden company C

    println!("== Unknown unknowns, quickstart ==");
    println!("ground truth (incl. the company no source mentions): {ground_truth}");
    println!();

    let sql = "SELECT SUM(employees) FROM us_tech_companies";
    println!("{sql}");
    for method in [
        ("closed world", CorrectionMethod::None),
        ("naive", CorrectionMethod::Naive),
        ("frequency", CorrectionMethod::Frequency),
        ("bucket", CorrectionMethod::Bucket),
    ] {
        let r = execute_sql(&table, sql, method.1).expect("query runs");
        match r.corrected {
            Some(corrected) => println!(
                "  {:<13} observed = {:>8.1}   corrected = {:>8.1}   (error vs truth: {:>+6.1})",
                method.0,
                r.observed,
                corrected,
                corrected - ground_truth
            ),
            None => println!(
                "  {:<13} observed = {:>8.1}   (error vs truth: {:>+6.1})",
                method.0,
                r.observed,
                r.observed - ground_truth
            ),
        }
    }

    println!();
    let count = execute_sql(
        &table,
        "SELECT COUNT(*) FROM us_tech_companies",
        CorrectionMethod::Naive,
    )
    .expect("query runs");
    println!(
        "COUNT(*): observed = {} unique companies, Chao92 estimates {:.2} exist",
        count.observed,
        count.corrected.unwrap()
    );

    let max = execute_sql(
        &table,
        "SELECT MAX(employees) FROM us_tech_companies",
        CorrectionMethod::Bucket,
    )
    .expect("query runs");
    let min = execute_sql(
        &table,
        "SELECT MIN(employees) FROM us_tech_companies",
        CorrectionMethod::Bucket,
    )
    .expect("query runs");
    println!();
    println!(
        "MAX(employees) = {} -> {}",
        max.observed,
        if max.extreme.map(|e| e.is_trusted()).unwrap_or(false) {
            "trusted (high bucket looks complete)"
        } else {
            "NOT trusted"
        }
    );
    println!(
        "MIN(employees) = {} -> {}",
        min.observed,
        if min.extreme.map(|e| e.is_trusted()).unwrap_or(false) {
            "trusted"
        } else {
            "NOT trusted (the low bucket likely misses a small company)"
        }
    );

    println!();
    println!(
        "diagnostics: coverage = {:.2}, sources = {}, recommendation = {:?}",
        max.diagnostics.coverage.unwrap_or(f64::NAN),
        max.diagnostics.contributing_sources,
        max.recommendation
    );
}
