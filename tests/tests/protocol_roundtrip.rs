//! Property tests for the wire protocol: every `Request` / `Response`
//! variant — including the session/prepared verbs and NaN/±inf estimate
//! payloads — must survive `encode` → `decode` exactly.
//!
//! Structural equality (`==`) pins finite payloads; NaN-bearing payloads are
//! pinned through a second encode (`encode(decode(encode(x))) == encode(x)`),
//! which is exactly the bit-for-bit canonical-text guarantee the parity
//! tests rely on.

use proptest::prelude::*;
use uu_query::value::Value;
use uu_server::protocol::{
    ErrorCode, GroupReply, LoadCsvRequest, MetricsReply, QueryReply, QueryRequest, Request,
    Response, ServerInfoReply, StatsReply, WireCacheStats, WireConnStats, WireDiagnostics,
    WireError, WireEstimate, WireExecStats, WireExtreme, WireIncrementalStats, WireProjectionStats,
    WireResult, WireSessionStats, WireSpan, WireStageMetrics, WireStorageStats, WireValue,
    PROTOCOL_VERSION,
};

/// An interesting `f64` from two generated numbers: finite values of many
/// magnitudes plus the non-finite and signed-zero corners.
fn float_from(selector: u64, mantissa: f64) -> f64 {
    match selector % 8 {
        0 => f64::NAN,
        1 => f64::INFINITY,
        2 => f64::NEG_INFINITY,
        3 => -0.0,
        4 => mantissa,
        5 => -mantissa * 1e300,
        6 => mantissa * f64::MIN_POSITIVE,
        _ => 1.0 / mantissa.abs().max(1e-12),
    }
}

fn opt_float(selector: u64, mantissa: f64) -> Option<f64> {
    if selector % 9 == 8 {
        None
    } else {
        Some(float_from(selector, mantissa))
    }
}

fn value_from(selector: u64, text: &str, number: f64) -> Value {
    match selector % 4 {
        0 => Value::Null,
        1 => Value::Int(selector as i64 - 500),
        2 => Value::Float(number),
        _ => Value::Str(text.to_string()),
    }
}

fn request_from(selector: u64, text: &str, text2: &str, flag: bool) -> Request {
    match selector % 12 {
        0 => Request::Query(QueryRequest {
            sql: text.to_string(),
            estimators: vec![text2.to_string()],
            cached: flag,
            trace: selector % 3 == 0,
        }),
        1 => Request::LoadCsv(LoadCsvRequest {
            table: text.to_string(),
            columns: vec![(text2.to_string(), "float".to_string())],
            entity_column: text2.to_string(),
            source_column: "worker".to_string(),
            csv: format!("worker,{text2}\n0,{text}\n"),
            append: flag,
        }),
        2 => Request::Warm {
            sql: text.to_string(),
        },
        3 => Request::SessionOpen {
            name: text.to_string(),
            estimators: if flag {
                vec![text2.to_string(), "bucket".to_string()]
            } else {
                Vec::new()
            },
        },
        4 => Request::SessionClose {
            name: text.to_string(),
        },
        5 => Request::Prepare {
            session: text.to_string(),
            name: text2.to_string(),
            sql: format!("SELECT SUM(v) FROM {text}"),
        },
        6 => Request::ExecutePrepared {
            session: text.to_string(),
            name: text2.to_string(),
        },
        7 => Request::Deallocate {
            session: text.to_string(),
            name: text2.to_string(),
        },
        8 => Request::ServerInfo,
        9 => Request::AppendStream {
            table: text.to_string(),
            source_column: text2.to_string(),
            csv: format!("{text2},k,v\n0,{text},1\n"),
        },
        10 => Request::Checkpoint,
        _ => [
            Request::Stats,
            Request::Metrics,
            Request::Ping,
            Request::Shutdown,
        ][selector as usize % 4]
            .clone(),
    }
}

fn wire_result(sel: &[u64], text: &str, numbers: &[f64]) -> WireResult {
    WireResult {
        query: text.to_string(),
        observed: float_from(sel[0], numbers[0]),
        corrected: opt_float(sel[1], numbers[1]),
        method: "bucket".to_string(),
        n_hat: opt_float(sel[2], numbers[2]),
        upper_bound: opt_float(sel[3], numbers[0] + numbers[1]),
        extreme: if sel[4] % 3 == 0 {
            Some(WireExtreme {
                trusted: sel[4] % 2 == 0,
                observed: float_from(sel[5], numbers[2]),
                estimated_missing: opt_float(sel[6], numbers[0]),
            })
        } else {
            None
        },
        diagnostics: WireDiagnostics {
            coverage: opt_float(sel[5], numbers[1]),
            contributing_sources: sel[6],
            max_source_share: opt_float(sel[7], numbers[2]),
            source_gini: opt_float(sel[0].wrapping_add(4), numbers[0]),
        },
        recommendation: "collect-more-data".to_string(),
        estimates: vec![WireEstimate {
            name: "naive".to_string(),
            delta: opt_float(sel[1].wrapping_add(1), numbers[1]),
            n_hat: opt_float(sel[2].wrapping_add(2), numbers[2]),
            corrected: opt_float(sel[3].wrapping_add(3), numbers[0]),
        }],
    }
}

/// A generated span tree: `None`, an empty tree, or a two-span parent/child
/// chain with an optional label.
fn trace_from(selector: u64, text: &str, sel: &[u64]) -> Option<Vec<WireSpan>> {
    match selector % 3 {
        0 => None,
        1 => Some(Vec::new()),
        _ => Some(vec![
            WireSpan {
                stage: "request".to_string(),
                label: None,
                parent: None,
                start_ns: sel[0],
                dur_ns: sel[1],
            },
            WireSpan {
                stage: "estimator_fanout".to_string(),
                label: if sel[2] % 2 == 0 {
                    Some(text.to_string())
                } else {
                    None
                },
                parent: Some(0),
                start_ns: sel[0].wrapping_add(sel[3]),
                dur_ns: sel[4],
            },
        ]),
    }
}

fn response_from(selector: u64, sel: &[u64], text: &str, numbers: &[f64], flag: bool) -> Response {
    match selector % 13 {
        0 => Response::Query(QueryReply {
            sql: text.to_string(),
            cache_hit: flag,
            elapsed_us: sel[0],
            grouped: flag,
            groups: vec![GroupReply {
                key: WireValue(value_from(sel[1], text, numbers[0])),
                result: wire_result(sel, text, numbers),
            }],
            trace: trace_from(sel[2], text, sel),
        }),
        1 => Response::Loaded {
            table: text.to_string(),
            observations: sel[0],
            entities: sel[1],
        },
        2 => Response::Warmed {
            sql: text.to_string(),
            universes: sel[0],
            already_cached: flag,
        },
        3 => Response::SessionOpened {
            name: text.to_string(),
            estimators: vec!["bucket".to_string()],
        },
        4 => Response::SessionClosed {
            name: text.to_string(),
            prepared_dropped: sel[0],
        },
        5 => Response::Prepared {
            session: text.to_string(),
            name: "q".to_string(),
            sql: format!("SELECT SUM(v) FROM {text}"),
            universes: sel[0],
            already_cached: flag,
        },
        6 => Response::Deallocated {
            session: text.to_string(),
            name: "q".to_string(),
        },
        7 => Response::Info(ServerInfoReply {
            version: "0.1.0".to_string(),
            protocol: PROTOCOL_VERSION,
            uptime_ms: sel[0],
            active_sessions: sel[1],
            fronts: if flag {
                vec!["json".to_string(), "pgwire".to_string()]
            } else {
                Vec::new()
            },
            workers: sel[2],
            data_dir: if flag {
                Some(format!("/var/lib/uu/{text}"))
            } else {
                None
            },
            durability: if flag { "batch" } else { "off" }.to_string(),
            last_checkpoint_age_ms: opt_float(sel[3], numbers[0].abs()),
        }),
        8 => Response::Stats(Box::new(StatsReply {
            protocol: PROTOCOL_VERSION,
            tables: vec![text.to_string()],
            workers: sel[0],
            connections: sel[1],
            requests: sel[2],
            errors: sel[3],
            uptime_ms: sel[4],
            sessions: vec![WireSessionStats {
                name: text.to_string(),
                estimators: vec!["bucket".to_string()],
                prepared: sel[5],
                executes: sel[6],
                frozen_hits: sel[7],
                age_ms: sel[0],
            }],
            cache: WireCacheStats {
                hits: sel[1],
                misses: sel[2],
                insertions: sel[3],
                evictions: sel[4],
                invalidations: sel[5],
                expirations: sel[6],
                len: sel[7],
                bytes: sel[0],
                capacity: sel[1],
                byte_budget: opt_float(sel[2], numbers[0].abs()),
                ttl_ms: opt_float(sel[3], numbers[1].abs()),
            },
            projection: WireProjectionStats {
                builds: sel[2],
                reuses: sel[3],
                bytes: sel[4],
            },
            exec: WireExecStats {
                threads: sel[4],
                regions: sel[5],
                parallel_regions: sel[6],
                tasks: sel[7],
                steals: sel[0],
                peak_workers: sel[1],
            },
            conn: WireConnStats {
                open: sel[5],
                peak_open: sel[6],
                frames_in: sel[7],
                frames_out: sel[0],
                bytes_in: sel[1],
                bytes_out: sel[2],
                idle_reaped: sel[3],
                backpressure: sel[4],
                queue_depth_peak: sel[5],
                queue_wait_us_total: sel[6],
                queue_wait_us_max: sel[7],
                backend: if sel[5] % 2 == 0 {
                    "epoll".to_string()
                } else {
                    "poll".to_string()
                },
            },
            incremental: WireIncrementalStats {
                delta_batches: sel[6],
                rows_appended: sel[7],
                permutation_merges: sel[0],
                snapshots_refrozen: sel[1],
                fallback_rebuilds: sel[2],
            },
            storage: WireStorageStats {
                wal_records: sel[3],
                wal_bytes: sel[4],
                fsyncs: sel[5],
                checkpoints: sel[6],
                recovered_tables: sel[7],
                replayed_records: sel[0],
                truncated_tail_bytes: sel[1],
            },
        })),
        9 => Response::Appended {
            table: text.to_string(),
            observations: sel[0],
            entities: sel[1],
            refrozen: sel[2],
            incremental: flag,
        },
        11 => Response::Checkpointed {
            tables: sel[0],
            bytes: sel[1],
        },
        10 => Response::Metrics(MetricsReply {
            entries: if flag {
                vec![WireStageMetrics {
                    verb: "query".to_string(),
                    stage: "request".to_string(),
                    count: sel[0],
                    p50_us: numbers[0],
                    p90_us: numbers[1],
                    p99_us: numbers[2],
                    max_us: numbers[2] * 2.0,
                    mean_us: numbers[0] / 3.0,
                }]
            } else {
                Vec::new()
            },
        }),
        _ => match selector % 4 {
            0 => Response::Pong,
            1 => Response::Bye,
            2 => Response::Error(WireError::new(
                ErrorCode::all()[sel[0] as usize % ErrorCode::all().len()],
                text.to_string(),
            )),
            _ => Response::Error(WireError {
                code: ErrorCode::UnknownEstimator,
                message: text.to_string(),
                accepted: vec!["naive".to_string(), "bucket".to_string()],
            }),
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// Every request variant survives encode → decode structurally.
    #[test]
    fn requests_round_trip(
        selector in 0u64..1_000_000,
        text in "[ -~]{0,24}",
        text2 in "[a-z][a-z0-9_-]{0,10}",
        flag in proptest::bool::ANY,
    ) {
        let request = request_from(selector, &text, &text2, flag);
        let line = request.encode();
        prop_assert!(!line.contains('\n'), "one request per line: {line}");
        let decoded = Request::decode(&line);
        prop_assert!(decoded.is_ok(), "{line}: {decoded:?}");
        prop_assert_eq!(decoded.unwrap(), request, "{}", line);
    }

    /// Every response variant — NaN/±inf payloads included — survives
    /// encode → decode: the canonical line is a fixed point, and NaN-free
    /// payloads additionally compare structurally equal.
    #[test]
    fn responses_round_trip(
        selector in 0u64..1_000_000,
        sel in proptest::collection::vec(0u64..1_000_000, 8),
        text in "[ -~]{0,24}",
        numbers in proptest::collection::vec(0.000001f64..1e9, 3),
        flag in proptest::bool::ANY,
    ) {
        let response = response_from(selector, &sel, &text, &numbers, flag);
        let line = response.encode();
        prop_assert!(!line.contains('\n'), "one response per line: {line}");
        let decoded = Response::decode(&line);
        prop_assert!(decoded.is_ok(), "{line}: {decoded:?}");
        let decoded = decoded.unwrap();
        // The canonical rendering is a fixed point (pins NaN payloads, which
        // are structurally un-comparable with ==).
        prop_assert_eq!(decoded.encode(), line.clone());
        if !line.contains("\"NaN\"") {
            prop_assert_eq!(decoded, response, "{}", line);
        }
    }
}
