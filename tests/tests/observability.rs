//! Integration tests for the observability subsystem (PR 9): traced query
//! round-trips, the `metrics` verb, the Prometheus scraper front, the
//! slow-query log, the reactor queue counters, and a property test pinning
//! histogram shard merging against a single-shard oracle.
//!
//! The stage histograms are process-global (per-thread shards in one
//! registry), so assertions here are monotone — "at least N samples",
//! "contains this series" — never exact global counts, which sibling tests
//! in the same process would perturb.

use std::io::{Read as _, Write};
use std::net::TcpStream;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use proptest::prelude::*;
use uu_core::obs;
use uu_core::obs::{Shard, Stage, Verb};
use uu_query::catalog::Catalog;
use uu_query::csv::load_observations;
use uu_query::schema::{ColumnType, Schema};
use uu_query::table::IntegratedTable;
use uu_server::client::Client;
use uu_server::protocol::{LoadCsvRequest, QueryRequest, Request, Response, WireSpan};
use uu_server::server::{spawn, ServerConfig};
use uu_server::{Service, SessionCtx};

const SQL: &str = "SELECT SUM(employees) FROM companies";

/// A synthetic observation log large enough that the instrumented stages
/// (freeze, kernels, estimator fan-out) dominate the service time — the
/// span-coverage assertion below needs real work, not just dispatch glue.
fn big_csv() -> String {
    let mut csv = String::from("worker,company,employees,state\n");
    for i in 0..3000u32 {
        let company = i % 600;
        let worker = i % 7;
        let employees = 100 + (i * 37) % 9000;
        let state = if company % 2 == 0 { "CA" } else { "WA" };
        csv.push_str(&format!("{worker},c{company},{employees},{state}\n"));
    }
    csv
}

fn load_big(client: &mut Client) {
    let response = client
        .request(&Request::LoadCsv(LoadCsvRequest {
            table: "companies".into(),
            columns: vec![
                ("company".into(), "str".into()),
                ("employees".into(), "float".into()),
                ("state".into(), "str".into()),
            ],
            entity_column: "company".into(),
            source_column: "worker".into(),
            csv: big_csv(),
            append: false,
        }))
        .unwrap();
    assert!(
        matches!(response, Response::Loaded { .. }),
        "{}",
        response.encode()
    );
}

/// Stage names present in a span tree.
fn stages(spans: &[WireSpan]) -> Vec<&str> {
    spans.iter().map(|s| s.stage.as_str()).collect()
}

/// The `"trace": true` option returns the server-side span tree, and its
/// direct children of the `request` umbrella span account for at least 90%
/// of the reported service time — the acceptance bar for the span taxonomy
/// actually tiling the query path.
#[test]
fn traced_cold_query_returns_a_span_tree_covering_the_service_time() {
    let handle = spawn(ServerConfig::default()).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    load_big(&mut client);

    let cold = client
        .query_traced(SQL, &["bucket", "naive"], true)
        .unwrap();
    assert!(!cold.cache_hit, "first traced query must be cold");
    let spans = cold.trace.as_deref().expect("traced reply carries spans");
    let names = stages(spans);
    for required in [
        "request",
        "parse",
        "cache_probe",
        "bucket_partition",
        "estimator_fanout",
        "serialize",
    ] {
        assert!(
            names.contains(&required),
            "cold trace misses stage {required:?}: {names:?}"
        );
    }
    // Every stage name on the wire is a registered taxonomy name.
    for span in spans {
        assert!(
            Stage::parse_name(&span.stage).is_some(),
            "unknown stage {:?} on the wire",
            span.stage
        );
    }
    // Parent links point backwards (spans arrive in start order).
    for (i, span) in spans.iter().enumerate() {
        if let Some(parent) = span.parent {
            assert!((parent as usize) < i, "span {i} has forward parent link");
        }
    }

    let request_idx = spans
        .iter()
        .position(|s| s.stage == "request")
        .expect("request umbrella span");
    let child_sum_ns: u64 = spans
        .iter()
        .filter(|s| s.parent == Some(request_idx as u64))
        .map(|s| s.dur_ns)
        .sum();
    let elapsed_ns = cold.elapsed_us * 1_000;
    assert!(
        child_sum_ns as f64 >= 0.90 * elapsed_ns as f64,
        "span tree accounts for {child_sum_ns}ns of {elapsed_ns}ns (<90%)"
    );

    // The hot path traces too, and an untraced query stays trace-free.
    let hot = client
        .query_traced(SQL, &["bucket", "naive"], true)
        .unwrap();
    assert!(hot.cache_hit);
    let hot_spans = hot.trace.as_deref().expect("hot traced reply");
    assert!(stages(hot_spans).contains(&"cache_probe"));
    let untraced = client.query(SQL, &["bucket"], true).unwrap();
    assert!(untraced.trace.is_none(), "untraced reply must omit spans");

    handle.shutdown();
}

/// The `metrics` verb returns per-(verb, stage) digests with sane quantile
/// ordering, covering both the query verb and the append path.
#[test]
fn metrics_verb_reports_stage_digests() {
    let handle = spawn(ServerConfig::default()).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    load_big(&mut client);
    for _ in 0..3 {
        client.query(SQL, &["bucket"], true).unwrap();
    }
    client
        .append_stream(
            "companies",
            "worker",
            "worker,company,employees,state\n9,zzz,500,CA\n",
        )
        .unwrap();

    let metrics = client.metrics().unwrap();
    assert!(!metrics.entries.is_empty());
    for entry in &metrics.entries {
        assert!(Verb::parse_name(&entry.verb).is_some(), "{:?}", entry.verb);
        assert!(
            Stage::parse_name(&entry.stage).is_some(),
            "{:?}",
            entry.stage
        );
        assert!(entry.count > 0, "empty digests are not reported");
        assert!(
            entry.p50_us <= entry.p90_us && entry.p90_us <= entry.p99_us,
            "quantiles out of order in {}/{}",
            entry.verb,
            entry.stage
        );
    }
    let query_request = metrics
        .entries
        .iter()
        .find(|e| e.verb == "query" && e.stage == "request")
        .expect("query/request digest present");
    assert!(query_request.count >= 3);
    assert!(query_request.max_us > 0.0 && query_request.mean_us > 0.0);
    assert!(
        metrics
            .entries
            .iter()
            .any(|e| e.verb == "append_stream" && e.stage == "request"),
        "append_stream verb missing from digests"
    );

    handle.shutdown();
}

/// Scrapes `--metrics-port` over real HTTP and runs promtool-style lexical
/// checks on the exposition: histogram series for both the `query` and
/// `append_stream` verbs, cumulative non-decreasing buckets ending in
/// `+Inf`, and `_count` consistent with the `+Inf` bucket.
#[test]
fn prometheus_endpoint_serves_lexically_valid_histograms() {
    let config = ServerConfig {
        metrics_addr: Some("127.0.0.1:0".to_string()),
        ..ServerConfig::default()
    };
    let handle = spawn(config).unwrap();
    let metrics_addr = handle.metrics_addr().expect("metrics front enabled");
    let mut client = Client::connect(handle.addr()).unwrap();
    load_big(&mut client);
    client.query(SQL, &["bucket"], true).unwrap();
    client.query(SQL, &["bucket"], true).unwrap();
    client
        .append_stream(
            "companies",
            "worker",
            "worker,company,employees,state\n9,yyy,400,WA\n",
        )
        .unwrap();

    let mut stream = TcpStream::connect(metrics_addr).unwrap();
    stream
        .write_all(b"GET /metrics HTTP/1.0\r\nHost: test\r\n\r\n")
        .unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    assert!(raw.starts_with("HTTP/1.0 200 OK\r\n"), "{raw}");
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, body)| body)
        .expect("HTTP body");

    // Lexical pass: every line is a comment or `name{labels} value` with a
    // parseable value.
    let mut series: Vec<(&str, &str)> = Vec::new(); // (name-with-labels, value)
    for line in body.lines() {
        if line.starts_with('#') {
            assert!(
                line.starts_with("# HELP ") || line.starts_with("# TYPE "),
                "bad comment line: {line}"
            );
            continue;
        }
        let (key, value) = line.rsplit_once(' ').expect("sample line has a value");
        assert!(
            value.parse::<f64>().is_ok() || value == "+Inf",
            "unparseable value in {line:?}"
        );
        let name = key.split('{').next().unwrap();
        assert!(
            name.chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "bad metric name in {line:?}"
        );
        series.push((key, value));
    }
    assert_eq!(
        body.matches("# TYPE uu_stage_duration_seconds histogram")
            .count(),
        1,
        "exactly one TYPE line for the stage histogram family"
    );

    // Histogram checks per verb: buckets cumulative, +Inf-terminated, and
    // consistent with _count.
    for verb in ["query", "append_stream"] {
        let series_for = |suffix: &str| -> Vec<(&str, f64)> {
            series
                .iter()
                .filter(|(key, _)| {
                    key.starts_with(&format!("uu_stage_duration_seconds{suffix}"))
                        && key.contains(&format!("verb=\"{verb}\""))
                        && key.contains("stage=\"request\"")
                })
                .map(|(key, value)| (*key, value.parse::<f64>().unwrap()))
                .collect()
        };
        let buckets = series_for("_bucket");
        assert!(!buckets.is_empty(), "no {verb} histogram buckets");
        let mut last = f64::NEG_INFINITY;
        for (key, value) in &buckets {
            assert!(*value >= last, "non-cumulative bucket {key}");
            last = *value;
        }
        let (inf_key, inf_value) = buckets.last().unwrap();
        assert!(inf_key.contains("le=\"+Inf\""), "last bucket is {inf_key}");
        let counts = series_for("_count");
        assert_eq!(counts.len(), 1, "one _count per series");
        assert_eq!(counts[0].1, *inf_value, "_count matches the +Inf bucket");
        assert_eq!(series_for("_sum").len(), 1, "one _sum per series");
    }

    // The server-wide gauges ride along.
    for gauge in ["uu_connections_open", "uu_requests_total"] {
        assert!(body.contains(gauge), "missing {gauge}");
    }

    // Unknown paths 404 without killing the front.
    let mut stream = TcpStream::connect(metrics_addr).unwrap();
    stream.write_all(b"GET /nope HTTP/1.0\r\n\r\n").unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    assert!(raw.starts_with("HTTP/1.0 404"), "{raw}");

    handle.shutdown();
}

/// A shared in-memory sink for the slow-query log.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn service_with_toy_table() -> Service {
    let schema = Schema::new([
        ("company", ColumnType::Str),
        ("employees", ColumnType::Float),
        ("state", ColumnType::Str),
    ]);
    let mut table = IntegratedTable::new("companies", schema, "company").unwrap();
    load_observations(&mut table, &big_csv(), "worker").unwrap();
    let mut catalog = Catalog::new();
    catalog.register(table).unwrap();
    Service::new(catalog, 0)
}

fn query_request(trace: bool) -> Request {
    Request::Query(QueryRequest {
        sql: SQL.to_string(),
        estimators: vec!["bucket".to_string()],
        cached: true,
        trace,
    })
}

/// Crossing the slow-query threshold emits exactly one JSON line whose span
/// tree parses; requests under the threshold (or non-query verbs) emit
/// nothing.
#[test]
fn slow_query_log_emits_one_json_line_with_a_span_tree() {
    let service = service_with_toy_table();
    let sink = SharedBuf::default();
    // Threshold zero: every query crosses it.
    service.set_slow_query_log(Duration::from_millis(0), Box::new(sink.clone()));
    let mut ctx = SessionCtx::new();

    // Non-query verbs never log.
    assert!(matches!(
        service.dispatch(&mut ctx, Request::Ping),
        Response::Pong
    ));
    assert!(sink.0.lock().unwrap().is_empty(), "ping must not log");

    let response = service.dispatch(&mut ctx, query_request(false));
    assert!(matches!(response, Response::Query(_)));

    let logged = String::from_utf8(sink.0.lock().unwrap().clone()).unwrap();
    let lines: Vec<&str> = logged.lines().collect();
    assert_eq!(lines.len(), 1, "exactly one record: {logged:?}");
    let record = uu_server::json::parse(lines[0]).expect("record is valid JSON");
    assert_eq!(record.get("verb").and_then(|v| v.as_str()), Some("query"));
    assert_eq!(record.get("sql").and_then(|v| v.as_str()), Some(SQL));
    assert_eq!(
        record.get("cache_hit").and_then(|v| v.as_bool()),
        Some(false)
    );
    assert!(record.get("elapsed_us").and_then(|v| v.as_u64()).is_some());
    assert!(record.get("ts_ms").and_then(|v| v.as_i64()).is_some());
    let spans = record
        .get("trace")
        .and_then(|v| v.as_arr())
        .expect("trace array");
    assert!(!spans.is_empty(), "slow record carries the span tree");
    for span in spans {
        let stage = span.get("stage").and_then(|v| v.as_str()).unwrap();
        assert!(Stage::parse_name(stage).is_some(), "{stage:?}");
        assert!(span.get("dur_ns").and_then(|v| v.as_u64()).is_some());
        assert!(span.get("start_ns").and_then(|v| v.as_u64()).is_some());
    }
    assert!(
        spans
            .iter()
            .any(|s| s.get("stage").and_then(|v| v.as_str()) == Some("request")),
        "umbrella span present"
    );

    // A sky-high threshold suppresses logging entirely.
    let quiet = SharedBuf::default();
    service.set_slow_query_log(Duration::from_secs(3600), Box::new(quiet.clone()));
    let response = service.dispatch(&mut ctx, query_request(false));
    assert!(matches!(response, Response::Query(_)));
    assert!(
        quiet.0.lock().unwrap().is_empty(),
        "fast query must not cross a 1h threshold"
    );
}

/// The reactor exports queue counters through `stats`: the work-queue
/// high-water mark moves (every request enqueues), and the queue-wait
/// counters stay internally consistent.
#[test]
fn stats_report_queue_depth_and_wait() {
    let handle = spawn(ServerConfig::default()).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    for _ in 0..5 {
        client.ping().unwrap();
    }
    let stats = client.stats().unwrap();
    assert!(
        stats.conn.queue_depth_peak >= 1,
        "every dispatched frame passes through the queue"
    );
    assert!(
        stats.conn.queue_wait_us_max <= stats.conn.queue_wait_us_total,
        "per-request max cannot exceed the total"
    );
    handle.shutdown();
}

/// Merging per-worker histogram shards must be exact: bucket counts, count,
/// sum and min/max all reproduce a single-shard oracle fed the same samples,
/// for any partitioning of the samples across shards — including the 0 ns
/// and `u64::MAX` (overflow-bucket) corners.
const CORNER_POOL: [u64; 10] = [
    0,
    1,
    249,
    250,
    251,
    1_000,
    1_000_000,
    u64::MAX / 2,
    u64::MAX - 1,
    u64::MAX,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn shard_merge_matches_single_shard_oracle(
        raw in proptest::collection::vec(0u64..u64::MAX, 1..120),
        shard_count in 1usize..6,
        corner_picks in proptest::collection::vec(0usize..10, 0..8),
    ) {
        // Mix arbitrary durations with the exact corner values.
        let mut samples: Vec<u64> = raw.clone();
        samples.extend(corner_picks.iter().map(|&i| CORNER_POOL[i]));

        let oracle = Shard::new();
        let shards: Vec<Shard> = (0..shard_count).map(|_| Shard::new()).collect();
        for (i, &ns) in samples.iter().enumerate() {
            oracle.record_ns(Verb::Query, Stage::Request, ns);
            // Deterministic partition across shards.
            shards[i % shard_count].record_ns(Verb::Query, Stage::Request, ns);
        }

        let expected = oracle.snapshot_cell(Verb::Query, Stage::Request);
        let mut merged = obs::HistogramSnapshot::default();
        for shard in &shards {
            merged.merge(&shard.snapshot_cell(Verb::Query, Stage::Request));
        }

        prop_assert_eq!(merged.count, expected.count);
        prop_assert_eq!(merged.sum_ns, expected.sum_ns);
        prop_assert_eq!(merged.min_ns, expected.min_ns);
        prop_assert_eq!(merged.max_ns, expected.max_ns);
        prop_assert_eq!(&merged.buckets[..], &expected.buckets[..]);
        prop_assert_eq!(merged.count, samples.len() as u64);
        // Exact min/max, not bucket bounds.
        prop_assert_eq!(merged.min_ns, *samples.iter().min().unwrap());
        prop_assert_eq!(merged.max_ns, *samples.iter().max().unwrap());
        // Quantiles stay inside the observed range even at the overflow
        // bucket (u64::MAX lands past the last finite bound).
        prop_assert!(merged.quantile_ns(0.5) >= merged.min_ns);
        prop_assert!(merged.quantile_ns(0.5) <= merged.max_ns);
    }
}
