//! Concurrent-connection test for `uu-server`, isolated in its own test
//! binary: the final assertion reads the global executor's `peak_workers`
//! high-water mark, which sibling tests running in the same process would
//! perturb.
//!
//! N line-JSON clients issue interleaved cached/uncached and grouped
//! queries concurrently **while M pgwire clients hammer the pgwire-lite
//! front of the same server**; every reply on either front must be
//! bit-for-bit identical to its expectation, and the executor must never
//! exceed its `UU_THREADS` worker budget — the server's single handler pool
//! multiplexes both fronts *inside* the executor's inline scope instead of
//! stacking helpers on top of it.

use std::sync::Arc;

use uu_core::engine::{EstimationSession, EstimatorKind};
use uu_query::catalog::Catalog;
use uu_query::csv::load_observations;
use uu_query::exec::CorrectionMethod;
use uu_query::schema::{ColumnType, Schema};
use uu_query::table::IntegratedTable;
use uu_server::client::Client;
use uu_server::pgwire::{panel_rows, PgClient, PgRow};
use uu_server::protocol::{LoadCsvRequest, Request, Response, WireEstimate};
use uu_server::server::{spawn, ServerConfig};

const CLIENTS: usize = 8;
const PG_CLIENTS: usize = 4;
const ROUNDS: usize = 5;
const PG_SQL: &str = "SELECT SUM(value) FROM sightings";
const PG_GROUPED_SQL: &str = "SELECT SUM(value) FROM sightings GROUP BY grp";

/// A multi-source observation log large enough that statistics work is
/// non-trivial: 6 sources × 80 draws over 3 groups.
fn observation_log() -> String {
    let mut csv = String::from("worker,item,value,grp\n");
    let mut state = 0x2545_F491_4F6C_DD1Du64;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for worker in 0..6u32 {
        for _ in 0..80 {
            let grp = next() % 3;
            let item = next() % (14 + 6 * grp);
            csv.push_str(&format!(
                "{worker},g{grp}i{item},{},g{grp}\n",
                (item + 1) * 10
            ));
        }
    }
    csv
}

fn schema() -> Schema {
    Schema::new([
        ("item", ColumnType::Str),
        ("value", ColumnType::Float),
        ("grp", ColumnType::Str),
    ])
}

type Case = (&'static str, &'static [&'static str], bool);

const CASES: &[Case] = &[
    (
        "SELECT SUM(value) FROM sightings",
        &["bucket", "naive"],
        true,
    ),
    (
        "SELECT SUM(value) FROM sightings",
        &["bucket", "naive"],
        false,
    ),
    (
        "SELECT SUM(value) FROM sightings GROUP BY grp",
        &["bucket"],
        true,
    ),
    (
        "SELECT SUM(value) FROM sightings GROUP BY grp",
        &["bucket"],
        false,
    ),
    ("SELECT COUNT(*) FROM sightings", &["naive"], true),
    (
        "SELECT AVG(value) FROM sightings WHERE value < 150",
        &["bucket"],
        true,
    ),
    (
        "SELECT SUM(value) FROM sightings GROUP BY grp",
        &["policy", "freq"],
        true,
    ),
];

fn method_for(kinds: &[EstimatorKind]) -> CorrectionMethod {
    match kinds.first() {
        None => CorrectionMethod::None,
        Some(EstimatorKind::Naive) => CorrectionMethod::Naive,
        Some(EstimatorKind::Frequency) => CorrectionMethod::Frequency,
        Some(EstimatorKind::Bucket) => CorrectionMethod::Bucket,
        Some(EstimatorKind::MonteCarlo(cfg)) => CorrectionMethod::MonteCarlo(*cfg),
        Some(EstimatorKind::Policy) => CorrectionMethod::Auto,
    }
}

/// The direct expectation: canonical renderings per group, via the exact
/// catalog surface the server routes through.
fn expected(catalog: &Catalog, case: &Case) -> Vec<String> {
    let (sql, estimators, _) = case;
    let kinds: Vec<_> = estimators
        .iter()
        .map(|n| EstimatorKind::by_name(n).unwrap())
        .collect();
    let (snapshots, _) = catalog.selection_sql(sql).unwrap();
    let rows = catalog
        .execute_sql_grouped_cached(sql, method_for(&kinds))
        .unwrap();
    let session = EstimationSession::new(kinds);
    rows.iter()
        .zip(snapshots.iter())
        .map(|(row, (_, snapshot))| {
            let estimates = session
                .run_profiled(&snapshot.profile())
                .iter()
                .map(WireEstimate::from_named)
                .collect();
            uu_server::protocol::WireResult::from_result(&row.result, estimates).canonical()
        })
        .collect()
}

#[test]
fn concurrent_clients_get_direct_catalog_answers_within_the_thread_budget() {
    let csv = observation_log();
    let handle = spawn(ServerConfig {
        pgwire_addr: Some("127.0.0.1:0".to_string()),
        ..ServerConfig::default()
    })
    .unwrap();

    // Load over the wire…
    let mut admin = Client::connect(handle.addr()).unwrap();
    let response = admin
        .request(&Request::LoadCsv(LoadCsvRequest {
            table: "sightings".into(),
            columns: vec![
                ("item".into(), "str".into()),
                ("value".into(), "float".into()),
                ("grp".into(), "str".into()),
            ],
            entity_column: "item".into(),
            source_column: "worker".into(),
            csv: csv.clone(),
            append: false,
        }))
        .unwrap();
    assert!(
        matches!(response, Response::Loaded { .. }),
        "{}",
        response.encode()
    );

    // …and build the identical local catalog + expectations up front (the
    // only executor caller besides the server's inline handlers).
    let mut table = IntegratedTable::new("sightings", schema(), "item").unwrap();
    load_observations(&mut table, &csv, "worker").unwrap();
    let mut catalog = Catalog::new();
    catalog.register(table).unwrap();
    let expectations: Arc<Vec<Vec<String>>> =
        Arc::new(CASES.iter().map(|case| expected(&catalog, case)).collect());

    // pgwire expectations: the same per-estimator answers the JSON front
    // gives, laid out by the shared `panel_rows` formatter.
    let pg_expect = |sql: &str| -> (Vec<String>, Vec<PgRow>) {
        let mut probe = Client::connect(handle.addr()).unwrap();
        let replies: Vec<(&'static str, _)> = EstimatorKind::all()
            .into_iter()
            .map(|kind| (kind.name(), probe.query(sql, &[kind.name()], true).unwrap()))
            .collect();
        panel_rows(&replies)
    };
    let pg_expectations = Arc::new(vec![
        (PG_SQL, pg_expect(PG_SQL)),
        (PG_GROUPED_SQL, pg_expect(PG_GROUPED_SQL)),
    ]);

    let addr = handle.addr();
    let pg_addr = handle.pgwire_addr().expect("pgwire front enabled");
    let pg_clients: Vec<_> = (0..PG_CLIENTS)
        .map(|id| {
            let pg_expectations = Arc::clone(&pg_expectations);
            std::thread::spawn(move || {
                let mut client = PgClient::connect(pg_addr).expect("pgwire connect");
                for round in 0..ROUNDS {
                    for (i, (sql, (want_columns, want_rows))) in pg_expectations.iter().enumerate()
                    {
                        let result = client
                            .simple_query(sql)
                            .unwrap_or_else(|e| panic!("pg client {id}: {sql}: {e}"));
                        assert_eq!(
                            &result.columns, want_columns,
                            "pg client {id} round {round} case {i}"
                        );
                        assert_eq!(
                            &result.rows, want_rows,
                            "pg client {id} round {round}: {sql}"
                        );
                    }
                }
            })
        })
        .collect();
    let clients: Vec<_> = (0..CLIENTS)
        .map(|id| {
            let expectations = Arc::clone(&expectations);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for round in 0..ROUNDS {
                    // Offset the case order per client so cached and
                    // uncached executions of the same SQL interleave across
                    // connections.
                    for step in 0..CASES.len() {
                        let idx = (id + round + step) % CASES.len();
                        let (sql, estimators, cached) = CASES[idx];
                        let reply = client
                            .query(sql, estimators, cached)
                            .unwrap_or_else(|e| panic!("client {id}: {sql}: {e}"));
                        let got: Vec<String> =
                            reply.groups.iter().map(|g| g.result.canonical()).collect();
                        assert_eq!(
                            got, expectations[idx],
                            "client {id} round {round}: {sql} (cached={cached})"
                        );
                    }
                }
            })
        })
        .collect();
    for client in clients {
        client.join().expect("client thread");
    }
    for client in pg_clients {
        client.join().expect("pgwire client thread");
    }

    let stats = admin.stats().unwrap();
    assert!(
        stats.connections >= (CLIENTS + PG_CLIENTS + 1) as u64,
        "all clients on both fronts were served (connections={})",
        stats.connections
    );
    assert_eq!(stats.tables, vec!["sightings".to_string()]);

    // The budget assertion: handlers run inline inside the executor scope,
    // so even CLIENTS concurrent connections never push the live-worker
    // high-water mark beyond the configured budget.
    let exec = uu_core::exec::global().metrics();
    assert!(
        exec.peak_workers <= exec.threads,
        "peak_workers {} exceeds the UU_THREADS budget {}",
        exec.peak_workers,
        exec.threads
    );

    admin.shutdown().unwrap();
    handle.join();
}
