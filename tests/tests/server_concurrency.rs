//! Concurrent-connection tests for `uu-server`, isolated in their own test
//! binary: the assertions read the global executor's counters
//! (`peak_workers`, `tasks`), which sibling tests running in the same
//! process would perturb — `EXEC_GATE` serializes the tests in this binary
//! for the same reason.
//!
//! N line-JSON clients issue interleaved cached/uncached and grouped
//! queries concurrently **while M pgwire clients hammer the pgwire-lite
//! front of the same server**; every reply on either front must be
//! bit-for-bit identical to its expectation, and the executor must never
//! exceed its `UU_THREADS` worker budget — complete frames are handed to
//! the worker pool which serves *inside* the executor's inline scope
//! instead of stacking helpers on top of it. A second test parks ≥1k idle
//! connections (scalable to 10k via `UU_IDLE_CONNS`) on the reactor and
//! pins that they cost zero executor tasks and zero worker threads; a third
//! dribbles requests one byte per write and pins that incremental frame
//! assembly answers bit-for-bit identically on both fronts.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use uu_core::engine::{EstimationSession, EstimatorKind};
use uu_query::catalog::Catalog;
use uu_query::csv::load_observations;
use uu_query::exec::CorrectionMethod;
use uu_query::schema::{ColumnType, Schema};
use uu_query::table::IntegratedTable;
use uu_server::client::Client;
use uu_server::pgwire::{panel_rows, PgClient, PgRow};
use uu_server::protocol::{LoadCsvRequest, QueryRequest, Request, Response, WireEstimate};
use uu_server::server::{spawn, ServerConfig};

/// Serializes the tests in this binary: each one reads global executor
/// counters that concurrent server traffic would perturb.
static EXEC_GATE: Mutex<()> = Mutex::new(());

const CLIENTS: usize = 8;
const PG_CLIENTS: usize = 4;
const ROUNDS: usize = 5;
const PG_SQL: &str = "SELECT SUM(value) FROM sightings";
const PG_GROUPED_SQL: &str = "SELECT SUM(value) FROM sightings GROUP BY grp";

/// A multi-source observation log large enough that statistics work is
/// non-trivial: 6 sources × 80 draws over 3 groups.
fn observation_log() -> String {
    let mut csv = String::from("worker,item,value,grp\n");
    let mut state = 0x2545_F491_4F6C_DD1Du64;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for worker in 0..6u32 {
        for _ in 0..80 {
            let grp = next() % 3;
            let item = next() % (14 + 6 * grp);
            csv.push_str(&format!(
                "{worker},g{grp}i{item},{},g{grp}\n",
                (item + 1) * 10
            ));
        }
    }
    csv
}

fn schema() -> Schema {
    Schema::new([
        ("item", ColumnType::Str),
        ("value", ColumnType::Float),
        ("grp", ColumnType::Str),
    ])
}

type Case = (&'static str, &'static [&'static str], bool);

const CASES: &[Case] = &[
    (
        "SELECT SUM(value) FROM sightings",
        &["bucket", "naive"],
        true,
    ),
    (
        "SELECT SUM(value) FROM sightings",
        &["bucket", "naive"],
        false,
    ),
    (
        "SELECT SUM(value) FROM sightings GROUP BY grp",
        &["bucket"],
        true,
    ),
    (
        "SELECT SUM(value) FROM sightings GROUP BY grp",
        &["bucket"],
        false,
    ),
    ("SELECT COUNT(*) FROM sightings", &["naive"], true),
    (
        "SELECT AVG(value) FROM sightings WHERE value < 150",
        &["bucket"],
        true,
    ),
    (
        "SELECT SUM(value) FROM sightings GROUP BY grp",
        &["policy", "freq"],
        true,
    ),
];

fn method_for(kinds: &[EstimatorKind]) -> CorrectionMethod {
    match kinds.first() {
        None => CorrectionMethod::None,
        Some(EstimatorKind::Naive) => CorrectionMethod::Naive,
        Some(EstimatorKind::Frequency) => CorrectionMethod::Frequency,
        Some(EstimatorKind::Bucket) => CorrectionMethod::Bucket,
        Some(EstimatorKind::MonteCarlo(cfg)) => CorrectionMethod::MonteCarlo(*cfg),
        Some(EstimatorKind::Policy) => CorrectionMethod::Auto,
    }
}

/// The direct expectation: canonical renderings per group, via the exact
/// catalog surface the server routes through.
fn expected(catalog: &Catalog, case: &Case) -> Vec<String> {
    let (sql, estimators, _) = case;
    let kinds: Vec<_> = estimators
        .iter()
        .map(|n| EstimatorKind::by_name(n).unwrap())
        .collect();
    let (snapshots, _) = catalog.selection_sql(sql).unwrap();
    let rows = catalog
        .execute_sql_grouped_cached(sql, method_for(&kinds))
        .unwrap();
    let session = EstimationSession::new(kinds);
    rows.iter()
        .zip(snapshots.iter())
        .map(|(row, (_, snapshot))| {
            let estimates = session
                .run_profiled(&snapshot.profile())
                .iter()
                .map(WireEstimate::from_named)
                .collect();
            uu_server::protocol::WireResult::from_result(&row.result, estimates).canonical()
        })
        .collect()
}

#[test]
fn concurrent_clients_get_direct_catalog_answers_within_the_thread_budget() {
    let _gate = EXEC_GATE.lock().unwrap();
    let csv = observation_log();
    let handle = spawn(ServerConfig {
        pgwire_addr: Some("127.0.0.1:0".to_string()),
        ..ServerConfig::default()
    })
    .unwrap();

    // Load over the wire…
    let mut admin = Client::connect(handle.addr()).unwrap();
    let response = admin
        .request(&Request::LoadCsv(LoadCsvRequest {
            table: "sightings".into(),
            columns: vec![
                ("item".into(), "str".into()),
                ("value".into(), "float".into()),
                ("grp".into(), "str".into()),
            ],
            entity_column: "item".into(),
            source_column: "worker".into(),
            csv: csv.clone(),
            append: false,
        }))
        .unwrap();
    assert!(
        matches!(response, Response::Loaded { .. }),
        "{}",
        response.encode()
    );

    // …and build the identical local catalog + expectations up front (the
    // only executor caller besides the server's inline handlers).
    let mut table = IntegratedTable::new("sightings", schema(), "item").unwrap();
    load_observations(&mut table, &csv, "worker").unwrap();
    let mut catalog = Catalog::new();
    catalog.register(table).unwrap();
    let expectations: Arc<Vec<Vec<String>>> =
        Arc::new(CASES.iter().map(|case| expected(&catalog, case)).collect());

    // pgwire expectations: the same per-estimator answers the JSON front
    // gives, laid out by the shared `panel_rows` formatter.
    let pg_expect = |sql: &str| -> (Vec<String>, Vec<PgRow>) {
        let mut probe = Client::connect(handle.addr()).unwrap();
        let replies: Vec<(&'static str, _)> = EstimatorKind::all()
            .into_iter()
            .map(|kind| (kind.name(), probe.query(sql, &[kind.name()], true).unwrap()))
            .collect();
        panel_rows(&replies)
    };
    let pg_expectations = Arc::new(vec![
        (PG_SQL, pg_expect(PG_SQL)),
        (PG_GROUPED_SQL, pg_expect(PG_GROUPED_SQL)),
    ]);

    let addr = handle.addr();
    let pg_addr = handle.pgwire_addr().expect("pgwire front enabled");
    let pg_clients: Vec<_> = (0..PG_CLIENTS)
        .map(|id| {
            let pg_expectations = Arc::clone(&pg_expectations);
            std::thread::spawn(move || {
                let mut client = PgClient::connect(pg_addr).expect("pgwire connect");
                for round in 0..ROUNDS {
                    for (i, (sql, (want_columns, want_rows))) in pg_expectations.iter().enumerate()
                    {
                        let result = client
                            .simple_query(sql)
                            .unwrap_or_else(|e| panic!("pg client {id}: {sql}: {e}"));
                        assert_eq!(
                            &result.columns, want_columns,
                            "pg client {id} round {round} case {i}"
                        );
                        assert_eq!(
                            &result.rows, want_rows,
                            "pg client {id} round {round}: {sql}"
                        );
                    }
                }
            })
        })
        .collect();
    let clients: Vec<_> = (0..CLIENTS)
        .map(|id| {
            let expectations = Arc::clone(&expectations);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for round in 0..ROUNDS {
                    // Offset the case order per client so cached and
                    // uncached executions of the same SQL interleave across
                    // connections.
                    for step in 0..CASES.len() {
                        let idx = (id + round + step) % CASES.len();
                        let (sql, estimators, cached) = CASES[idx];
                        let reply = client
                            .query(sql, estimators, cached)
                            .unwrap_or_else(|e| panic!("client {id}: {sql}: {e}"));
                        let got: Vec<String> =
                            reply.groups.iter().map(|g| g.result.canonical()).collect();
                        assert_eq!(
                            got, expectations[idx],
                            "client {id} round {round}: {sql} (cached={cached})"
                        );
                    }
                }
            })
        })
        .collect();
    for client in clients {
        client.join().expect("client thread");
    }
    for client in pg_clients {
        client.join().expect("pgwire client thread");
    }

    let stats = admin.stats().unwrap();
    assert!(
        stats.connections >= (CLIENTS + PG_CLIENTS + 1) as u64,
        "all clients on both fronts were served (connections={})",
        stats.connections
    );
    assert_eq!(stats.tables, vec!["sightings".to_string()]);

    // The budget assertion: handlers run inline inside the executor scope,
    // so even CLIENTS concurrent connections never push the live-worker
    // high-water mark beyond the configured budget.
    let exec = uu_core::exec::global().metrics();
    assert!(
        exec.peak_workers <= exec.threads,
        "peak_workers {} exceeds the UU_THREADS budget {}",
        exec.peak_workers,
        exec.threads
    );

    admin.shutdown().unwrap();
    handle.join();
}

/// ≥1k mostly-idle connections parked on the reactor must cost **zero**
/// executor tasks and zero worker threads — the whole point of the
/// readiness-driven connection layer. Scale with `UU_IDLE_CONNS=10000`.
#[test]
fn a_thousand_idle_connections_cost_no_executor_tokens() {
    let _gate = EXEC_GATE.lock().unwrap();
    let n: usize = std::env::var("UU_IDLE_CONNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1000);
    // Client and server sockets live in this one process: budget two fds
    // per parked connection plus slack. Best effort — if the hard limit is
    // lower we find out from the connect loop, with a clear message.
    let _ = uu_server::reactor::raise_nofile_limit(2 * n as u64 + 512);
    let handle = spawn(ServerConfig::default()).unwrap();
    let addr = handle.addr();
    let mut admin = Client::connect(addr).unwrap();

    let idles: Vec<TcpStream> = (0..n)
        .map(|i| {
            TcpStream::connect(addr).unwrap_or_else(|e| panic!("idle connection {i} of {n}: {e}"))
        })
        .collect();
    // Wait until the reactor has accepted every parked socket (connect()
    // completes on the kernel backlog, ahead of the server's accept).
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let stats = admin.stats().unwrap();
        if stats.conn.open > n as u64 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "only {} of {} idle connections accepted",
            stats.conn.open,
            n + 1
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    let before = admin.stats().unwrap();
    // An active client keeps getting served promptly among the idle herd.
    let mut active = Client::connect(addr).unwrap();
    for _ in 0..20 {
        active.ping().unwrap();
    }
    std::thread::sleep(Duration::from_millis(100));
    let after = admin.stats().unwrap();

    assert!(
        after.conn.peak_open >= n as u64 + 2,
        "peak_open {} never saw the idle herd",
        after.conn.peak_open
    );
    assert_eq!(
        after.exec.tasks, before.exec.tasks,
        "idle sockets spawned executor tasks"
    );
    assert!(
        after.exec.peak_workers <= after.exec.threads,
        "peak_workers {} exceeds the UU_THREADS budget {} with {n} idle connections parked",
        after.exec.peak_workers,
        after.exec.threads
    );

    drop(idles);
    admin.shutdown().unwrap();
    handle.join();
}

/// Writes `bytes` one byte per `write` call, with pauses, so the reactor
/// sees the frame arrive in (at least mostly) single-byte reads.
fn dribble(stream: &mut TcpStream, bytes: &[u8]) {
    for &b in bytes {
        stream.write_all(&[b]).unwrap();
        stream.flush().unwrap();
        std::thread::sleep(Duration::from_micros(200));
    }
}

/// Reads one line-JSON response (through the trailing newline).
fn read_json_line(stream: &mut TcpStream) -> Vec<u8> {
    let mut out = Vec::new();
    let mut b = [0u8; 1];
    loop {
        let n = stream.read(&mut b).unwrap();
        assert!(n > 0, "peer closed before a full line");
        out.push(b[0]);
        if b[0] == b'\n' {
            return out;
        }
    }
}

/// Reads whole pgwire messages until (and including) `ReadyForQuery`.
fn read_pg_until_ready(stream: &mut TcpStream) -> Vec<u8> {
    let mut out = Vec::new();
    loop {
        let mut header = [0u8; 5];
        stream.read_exact(&mut header).unwrap();
        let len = i32::from_be_bytes([header[1], header[2], header[3], header[4]]) as usize;
        let mut body = vec![0u8; len - 4];
        stream.read_exact(&mut body).unwrap();
        out.extend_from_slice(&header);
        out.extend_from_slice(&body);
        if header[0] == b'Z' {
            return out;
        }
    }
}

/// A pgwire v3 `StartupMessage` (no SSL probe — optional in the protocol).
fn pg_startup_bytes() -> Vec<u8> {
    let mut params = Vec::new();
    params.extend_from_slice(&196_608i32.to_be_bytes());
    params.extend_from_slice(b"user\0uu\0database\0uu\0\0");
    let mut out = Vec::new();
    out.extend_from_slice(&((params.len() as i32 + 4).to_be_bytes()));
    out.extend_from_slice(&params);
    out
}

/// A pgwire simple-query (`Q`) message.
fn pg_query_bytes(sql: &str) -> Vec<u8> {
    let mut out = vec![b'Q'];
    out.extend_from_slice(&((sql.len() as i32 + 5).to_be_bytes()));
    out.extend_from_slice(sql.as_bytes());
    out.push(0);
    out
}

/// Byte-at-a-time writes must assemble into exactly the frames whole writes
/// produce, on both fronts: deterministic responses (ping, pgwire panels)
/// compare bit-for-bit; query replies compare on their canonical group
/// renders (the reply carries a wall-clock `elapsed_us`).
#[test]
fn byte_at_a_time_writes_assemble_identical_responses_on_both_fronts() {
    let _gate = EXEC_GATE.lock().unwrap();
    let handle = spawn(ServerConfig {
        pgwire_addr: Some("127.0.0.1:0".to_string()),
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = handle.addr();
    let pg_addr = handle.pgwire_addr().expect("pgwire front enabled");

    let mut admin = Client::connect(addr).unwrap();
    let response = admin
        .request(&Request::LoadCsv(LoadCsvRequest {
            table: "t".into(),
            columns: vec![("k".into(), "str".into()), ("v".into(), "float".into())],
            entity_column: "k".into(),
            source_column: "worker".into(),
            csv: "worker,k,v\n0,A,10\n0,B,20\n1,A,10\n1,C,30\n".into(),
            append: false,
        }))
        .unwrap();
    assert!(matches!(response, Response::Loaded { .. }));
    let sql = "SELECT SUM(v) FROM t";
    // Warm the cache so whole and dribbled queries are both cache hits.
    admin.query(sql, &["bucket"], true).unwrap();

    let ping_line = b"{\"op\":\"ping\"}\n".to_vec();
    let query_line = {
        let mut line = Request::Query(QueryRequest {
            sql: sql.into(),
            estimators: vec!["bucket".into()],
            cached: true,
            trace: false,
        })
        .encode();
        line.push('\n');
        line.into_bytes()
    };

    // --- JSON front: whole writes vs dribbled writes ---
    let mut whole = TcpStream::connect(addr).unwrap();
    whole.set_nodelay(true).unwrap();
    whole.write_all(&ping_line).unwrap();
    let whole_ping = read_json_line(&mut whole);
    whole.write_all(&query_line).unwrap();
    let whole_query = read_json_line(&mut whole);

    let mut dribbled = TcpStream::connect(addr).unwrap();
    dribbled.set_nodelay(true).unwrap();
    dribble(&mut dribbled, &ping_line);
    let dribbled_ping = read_json_line(&mut dribbled);
    dribble(&mut dribbled, &query_line);
    let dribbled_query = read_json_line(&mut dribbled);

    assert_eq!(whole_ping, dribbled_ping, "ping responses diverged");
    let canonical_groups = |raw: &[u8]| -> Vec<String> {
        let line = std::str::from_utf8(raw).unwrap();
        match Response::decode(line.trim_end()).unwrap() {
            Response::Query(reply) => {
                assert!(reply.cache_hit, "expected a cache hit: {line}");
                reply.groups.iter().map(|g| g.result.canonical()).collect()
            }
            other => panic!("expected a query reply, got {}", other.encode()),
        }
    };
    assert_eq!(
        canonical_groups(&whole_query),
        canonical_groups(&dribbled_query),
        "query answers diverged"
    );

    // --- pgwire front: the full byte stream compares bit-for-bit ---
    let mut whole = TcpStream::connect(pg_addr).unwrap();
    whole.set_nodelay(true).unwrap();
    whole.write_all(&pg_startup_bytes()).unwrap();
    let whole_startup = read_pg_until_ready(&mut whole);
    whole.write_all(&pg_query_bytes(sql)).unwrap();
    let whole_panel = read_pg_until_ready(&mut whole);

    let mut dribbled = TcpStream::connect(pg_addr).unwrap();
    dribbled.set_nodelay(true).unwrap();
    dribble(&mut dribbled, &pg_startup_bytes());
    let dribbled_startup = read_pg_until_ready(&mut dribbled);
    dribble(&mut dribbled, &pg_query_bytes(sql));
    let dribbled_panel = read_pg_until_ready(&mut dribbled);

    assert_eq!(whole_startup, dribbled_startup, "startup replies diverged");
    assert_eq!(whole_panel, dribbled_panel, "panel bytes diverged");

    admin.shutdown().unwrap();
    handle.join();
}
