//! Property tests pinning the columnar tentpole: for arbitrary integrated
//! tables — NULLs, NaN/±inf cells, duplicate values, Int cells in Float
//! columns, string columns — the vectorized path behind
//! [`IntegratedTable::sample_view`] / [`IntegratedTable::grouped_sample_views`]
//! must return **bit-for-bit** the same selections, the same groups and the
//! same value-sort permutations as the per-record reference path
//! (`sample_view_rows` / `grouped_sample_views_rows`), and predicate errors
//! must surface identically.
//!
//! Values are compared by `f64::to_bits`, not `==`, so `-0.0` vs `0.0`
//! drift would be caught; NaN-bearing *attribute* columns are exercised
//! through `COUNT(*)`-shaped selections (attribute `None`), since observed
//! items themselves require finite values.

use proptest::prelude::*;
use uu_core::sample::SampleView;
use uu_query::predicate::{CmpOp, Predicate};
use uu_query::schema::{ColumnType, Schema};
use uu_query::table::IntegratedTable;
use uu_query::value::Value;

/// One generated observation row, as selector integers (the protocol
/// round-trip suite's style: cheap to shrink, easy to steer into corners).
/// Nested pairs keep within the vendored proptest's tuple arities.
type RowSel = ((u64, u32, u64, i32), (u64, i32, u64));

/// A float with all the interesting corners: specials, signed zero,
/// heavy duplication (small integer grid) and plain fractions.
fn float_from(selector: u64, mantissa: i32) -> f64 {
    match selector % 8 {
        0 => f64::NAN,
        1 => f64::INFINITY,
        2 => f64::NEG_INFINITY,
        3 => -0.0,
        4 => 0.0,
        5 => (mantissa % 7) as f64, // duplicates
        6 => mantissa as f64 * 0.25,
        _ => mantissa as f64 * 1e12,
    }
}

/// A cell for the predicate column (`Float` typed, so it may also hold
/// `Int` cells, which the kernels must widen exactly like the row path).
fn pred_cell(selector: u64, mantissa: i32) -> Value {
    match selector % 11 {
        8 => Value::Null,
        9 => Value::Int(mantissa as i64),
        10 => Value::Int((mantissa as i64) << 40), // widening beyond f32 range
        _ => Value::Float(float_from(selector, mantissa)),
    }
}

/// A cell for the aggregation column: finite or NULL only (observed items
/// assert finite values on both paths).
fn attr_cell(selector: u64, mantissa: i32) -> Value {
    match selector % 6 {
        0 => Value::Null,
        1 => Value::Float(-0.0),
        2 => Value::Float((mantissa % 5) as f64),
        3 => Value::Int(mantissa as i64),
        _ => Value::Float(mantissa as f64 * 0.5),
    }
}

const STATES: [&str; 4] = ["CA", "WA", "NY", ""];

/// Builds a table with entity-key duplication (multiplicities), a
/// specials-bearing Float predicate column, a finite attribute column and a
/// small-pool string column.
fn table_from(rows: &[RowSel]) -> IntegratedTable {
    let schema = Schema::new([
        ("company", ColumnType::Str),
        ("pred", ColumnType::Float),
        ("attr", ColumnType::Float),
        ("state", ColumnType::Str),
    ]);
    let mut table = IntegratedTable::new("t", schema, "company").unwrap();
    for &((entity, source, pred_sel, pred_m), (attr_sel, attr_m, str_sel)) in rows {
        table
            .insert_observation(
                source % 5,
                vec![
                    Value::from(format!("e{}", entity % 24)),
                    pred_cell(pred_sel, pred_m),
                    attr_cell(attr_sel, attr_m),
                    Value::from(STATES[str_sel as usize % STATES.len()]),
                ],
            )
            .unwrap();
    }
    table
}

/// A literal for comparisons: finite/special floats, ints, NULL, and a
/// string (type-mismatched against the Float `pred` column → unknown).
fn literal_from(selector: u64, mantissa: i32) -> Value {
    match selector % 12 {
        8 => Value::Null,
        9 => Value::Int((mantissa % 7) as i64),
        10 => Value::Str(STATES[mantissa.unsigned_abs() as usize % STATES.len()].into()),
        11 => Value::Float(f64::NAN),
        _ => Value::Float(float_from(selector, mantissa)),
    }
}

const OPS: [CmpOp; 6] = [
    CmpOp::Eq,
    CmpOp::Ne,
    CmpOp::Lt,
    CmpOp::Le,
    CmpOp::Gt,
    CmpOp::Ge,
];

/// A small predicate tree over both the numeric and the string column, with
/// AND/OR/NOT combinators so the Kleene bitmap algebra is exercised against
/// the row evaluator's three-valued logic.
fn predicate_from(sel: &[u64; 6], mantissa: i32) -> Predicate {
    let leaf_num = Predicate::cmp(
        "pred",
        OPS[sel[0] as usize % OPS.len()],
        literal_from(sel[1], mantissa),
    );
    let leaf_str = Predicate::cmp(
        "state",
        OPS[sel[2] as usize % OPS.len()],
        Value::Str(STATES[sel[3] as usize % STATES.len()].into()),
    );
    let combined = match sel[4] % 4 {
        0 => leaf_num,
        1 => leaf_num.and(leaf_str),
        2 => leaf_num.or(leaf_str),
        _ => leaf_num.and(leaf_str.not()),
    };
    match sel[5] % 3 {
        0 => combined.not(),
        _ => combined,
    }
}

/// Bit-for-bit equality of two views: same length, and per item identical
/// value bits, multiplicity and per-source lineage.
fn assert_views_equal(
    columnar: &SampleView,
    rows: &SampleView,
    context: &str,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(
        columnar.items().len(),
        rows.items().len(),
        "len: {}",
        context
    );
    for (a, b) in columnar.items().iter().zip(rows.items()) {
        prop_assert_eq!(
            a.value.to_bits(),
            b.value.to_bits(),
            "value bits: {}",
            context
        );
        prop_assert_eq!(a.multiplicity, b.multiplicity, "multiplicity: {}", context);
        prop_assert_eq!(&a.source_counts, &b.source_counts, "lineage: {}", context);
    }
    Ok(())
}

/// Reference stable argsort of a view's items by value (what
/// `items_sorted_by_value` realises).
fn reference_argsort(view: &SampleView) -> Vec<u32> {
    let items = view.items();
    let mut idx: Vec<u32> = (0..items.len() as u32).collect();
    idx.sort_by(|&a, &b| items[a as usize].value.total_cmp(&items[b as usize].value));
    idx
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Ungrouped selections: the columnar path equals the row path for both
    /// `AGG(attr)` and `COUNT(*)` shapes, and the selection's sort
    /// permutation equals a from-scratch stable argsort of the view.
    #[test]
    fn selection_and_sort_match_the_row_path(
        rows in proptest::collection::vec(
            ((0u64..1000, 0u32..5, 0u64..1_000_000, -40i32..40),
             (0u64..1_000_000, -40i32..40, 0u64..1_000_000)),
            0..60,
        ),
        psel in proptest::collection::vec(0u64..1_000_000, 6),
        mantissa in -40i32..40,
    ) {
        let table = table_from(&rows);
        let predicate = predicate_from(&[psel[0], psel[1], psel[2], psel[3], psel[4], psel[5]], mantissa);
        for attr in [Some("attr"), None] {
            let reference = table.sample_view_rows(attr, &predicate).unwrap();
            let (view, sorted) = table.sample_view_with_sorted(attr, &predicate).unwrap();
            assert_views_equal(&view, &reference, &format!("attr={attr:?}"))?;
            prop_assert_eq!(
                &sorted,
                &reference_argsort(&view),
                "sort permutation must be the stable argsort (attr={:?})",
                attr
            );
        }
    }

    /// Grouped selections: same groups in the same order (keys compared by
    /// entity representation, so a NaN group must meet its NaN twin), each
    /// with a bit-for-bit identical view and a stable-argsort permutation.
    /// Grouping by the specials-bearing Float column and by the string
    /// column are both exercised.
    #[test]
    fn grouped_selections_match_the_row_path(
        rows in proptest::collection::vec(
            ((0u64..1000, 0u32..5, 0u64..1_000_000, -40i32..40),
             (0u64..1_000_000, -40i32..40, 0u64..1_000_000)),
            0..60,
        ),
        psel in proptest::collection::vec(0u64..1_000_000, 6),
        mantissa in -40i32..40,
    ) {
        let table = table_from(&rows);
        let predicate = predicate_from(&[psel[0], psel[1], psel[2], psel[3], psel[4], psel[5]], mantissa);
        for group_column in ["pred", "state"] {
            let reference = table
                .grouped_sample_views_rows(Some("attr"), &predicate, group_column)
                .unwrap();
            let grouped = table
                .grouped_sample_views_with_sorted(Some("attr"), &predicate, group_column)
                .unwrap();
            prop_assert_eq!(grouped.len(), reference.len(), "group count: {}", group_column);
            for ((value, view, sorted), (ref_value, ref_view)) in grouped.iter().zip(&reference) {
                prop_assert_eq!(
                    value.entity_key(),
                    ref_value.entity_key(),
                    "group key: {}",
                    group_column
                );
                assert_views_equal(view, ref_view, &format!("group {value:?} of {group_column}"))?;
                prop_assert_eq!(
                    sorted,
                    &reference_argsort(view),
                    "group sort permutation: {}",
                    group_column
                );
            }
        }
    }
}

#[test]
fn unknown_predicate_columns_error_identically() {
    let table = table_from(&[((0, 0, 0, 1), (0, 1, 0))]);
    let bad = Predicate::cmp("nope", CmpOp::Eq, Value::from(1.0));
    let columnar = table.sample_view(Some("attr"), &bad).unwrap_err();
    let rows = table.sample_view_rows(Some("attr"), &bad).unwrap_err();
    assert_eq!(columnar.to_string(), rows.to_string());

    // An empty table never evaluates the predicate, on either path.
    let empty = table_from(&[]);
    assert!(empty.sample_view(Some("attr"), &bad).is_ok());
    assert!(empty.sample_view_rows(Some("attr"), &bad).is_ok());
}
