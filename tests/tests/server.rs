//! Loopback integration tests for `uu-server`.
//!
//! The server must be a transparent wire wrapper around the shared
//! [`Catalog`]: every answer it returns is compared **bit-for-bit** against
//! the corresponding direct `Catalog` call on an identically-loaded local
//! catalog (the canonical JSON rendering makes NaN-bearing results
//! comparable). Error paths answer with structured codes and never cost the
//! connection; the repeated-query path must hit the profile cache (counter
//! asserted) and its round-trip latency is recorded to `BENCH_server.json`.
//!
//! The concurrent-connection test lives in `server_concurrency.rs` (its own
//! process) so the `peak_workers` executor assertion is not perturbed by
//! sibling tests.

use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use uu_core::engine::EstimationSession;
use uu_query::catalog::Catalog;
use uu_query::csv::load_observations;
use uu_query::exec::CorrectionMethod;
use uu_query::schema::{ColumnType, Schema};
use uu_query::table::IntegratedTable;
use uu_server::client::{Client, ClientError};
use uu_server::protocol::{ErrorCode, LoadCsvRequest, Request, Response, WireEstimate, WireResult};
use uu_server::server::{spawn, ServerConfig};

/// The toy observation log (Appendix F plus a state column).
const TOY_CSV: &str = "\
worker,company,employees,state
0,A,1000,CA
0,B,2000,CA
0,D,10000,WA
1,B,2000,CA
1,D,10000,WA
2,D,10000,WA
3,D,10000,WA
4,A,1000,CA
4,E,300,CA
";

fn toy_schema() -> Schema {
    Schema::new([
        ("company", ColumnType::Str),
        ("employees", ColumnType::Float),
        ("state", ColumnType::Str),
    ])
}

/// A local catalog loaded through the same CSV path the server uses.
fn direct_catalog() -> Catalog {
    let mut table = IntegratedTable::new("companies", toy_schema(), "company").unwrap();
    load_observations(&mut table, TOY_CSV, "worker").unwrap();
    let mut catalog = Catalog::new();
    catalog.register(table).unwrap();
    catalog
}

/// Loads the toy table into a running server over the wire.
fn load_toy(client: &mut Client) {
    let response = client
        .request(&Request::LoadCsv(LoadCsvRequest {
            table: "companies".into(),
            columns: vec![
                ("company".into(), "str".into()),
                ("employees".into(), "float".into()),
                ("state".into(), "str".into()),
            ],
            entity_column: "company".into(),
            source_column: "worker".into(),
            csv: TOY_CSV.into(),
            append: false,
        }))
        .unwrap();
    assert!(
        matches!(
            response,
            Response::Loaded {
                observations: 9,
                entities: 4,
                ..
            }
        ),
        "{}",
        response.encode()
    );
}

/// The direct-call expectation for one query: executed through the exact
/// catalog methods the server routes through, with the per-estimator session
/// fan-out over the same cached selection.
fn expected_rows(catalog: &Catalog, sql: &str, estimators: &[&str]) -> Vec<WireResult> {
    let kinds: Vec<_> = estimators
        .iter()
        .map(|n| uu_core::engine::EstimatorKind::by_name(n).unwrap())
        .collect();
    let method = match kinds.first() {
        None => CorrectionMethod::None,
        Some(uu_core::engine::EstimatorKind::Naive) => CorrectionMethod::Naive,
        Some(uu_core::engine::EstimatorKind::Frequency) => CorrectionMethod::Frequency,
        Some(uu_core::engine::EstimatorKind::Bucket) => CorrectionMethod::Bucket,
        Some(uu_core::engine::EstimatorKind::MonteCarlo(cfg)) => CorrectionMethod::MonteCarlo(*cfg),
        Some(uu_core::engine::EstimatorKind::Policy) => CorrectionMethod::Auto,
    };
    let (snapshots, _) = catalog.selection_sql(sql).unwrap();
    let rows = catalog.execute_sql_grouped_cached(sql, method).unwrap();
    let session = EstimationSession::new(kinds.clone());
    rows.iter()
        .zip(snapshots.iter())
        .map(|(row, (_, snapshot))| {
            let estimates = if kinds.is_empty() {
                Vec::new()
            } else {
                session
                    .run_profiled(&snapshot.profile())
                    .iter()
                    .map(WireEstimate::from_named)
                    .collect()
            };
            WireResult::from_result(&row.result, estimates)
        })
        .collect()
}

#[test]
fn server_answers_match_direct_catalog_calls_bit_for_bit() {
    let handle = spawn(ServerConfig::default()).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    load_toy(&mut client);
    let catalog = direct_catalog();

    let cases: &[(&str, &[&str])] = &[
        (
            "SELECT SUM(employees) FROM companies",
            &["bucket", "naive", "freq", "monte-carlo"],
        ),
        ("SELECT SUM(employees) FROM companies", &["naive"]),
        ("SELECT COUNT(*) FROM companies", &["naive"]),
        ("SELECT AVG(employees) FROM companies", &["bucket"]),
        ("SELECT MIN(employees) FROM companies", &["bucket"]),
        ("SELECT MAX(employees) FROM companies", &["bucket"]),
        (
            "SELECT SUM(employees) FROM companies WHERE employees < 5000",
            &["freq", "policy"],
        ),
        (
            "SELECT SUM(employees) FROM companies GROUP BY state",
            &["bucket", "naive"],
        ),
        (
            "SELECT AVG(employees) FROM companies WHERE employees > 99999",
            &["bucket"],
        ),
        ("SELECT COUNT(*) FROM companies", &[]),
    ];
    for (sql, estimators) in cases {
        let expected = expected_rows(&catalog, sql, estimators);
        for cached in [true, false] {
            let reply = client.query(sql, estimators, cached).unwrap();
            assert_eq!(
                reply.groups.len(),
                expected.len(),
                "{sql} (cached={cached})"
            );
            for (group, want) in reply.groups.iter().zip(&expected) {
                assert_eq!(
                    group.result.canonical(),
                    want.canonical(),
                    "{sql} (cached={cached})"
                );
            }
        }
    }
    client.shutdown().unwrap();
    handle.join();
}

#[test]
fn repeated_query_hits_the_cache_and_latency_is_recorded() {
    let handle = spawn(ServerConfig::default()).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    load_toy(&mut client);
    let sql = "SELECT SUM(employees) FROM companies GROUP BY state";

    let start = Instant::now();
    let cold = client.query(sql, &["bucket"], true).unwrap();
    let cold_us = start.elapsed().as_secs_f64() * 1e6;
    assert!(!cold.cache_hit, "first execution builds the selection");
    let hits_before = client.stats().unwrap().cache.hits;

    let mut hit_us = f64::INFINITY;
    let mut warm = None;
    for _ in 0..10 {
        let start = Instant::now();
        warm = Some(client.query(sql, &["bucket"], true).unwrap());
        hit_us = hit_us.min(start.elapsed().as_secs_f64() * 1e6);
    }
    let warm = warm.unwrap();
    assert!(warm.cache_hit, "second round-trip serves from the cache");
    let stats = client.stats().unwrap();
    assert!(
        stats.cache.hits > hits_before,
        "hit counter must increment ({} -> {})",
        hits_before,
        stats.cache.hits
    );
    // Identical groups, bit for bit.
    for (a, b) in cold.groups.iter().zip(&warm.groups) {
        assert_eq!(a.result.canonical(), b.result.canonical());
    }

    // Record the loopback latency like the benches do.
    let record = format!(
        "{{ \"bench\": \"server_integration\", \"cold_roundtrip_us\": {cold_us:.1}, \
         \"hit_roundtrip_us_min\": {hit_us:.1}, \"cache_hits\": {}, \"cache_misses\": {} }}\n",
        stats.cache.hits, stats.cache.misses
    );
    let dir = std::env::var("BENCH_JSON_DIR").unwrap_or_else(|_| ".".to_string());
    let path = std::path::Path::new(&dir).join("BENCH_server.json");
    let written = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| f.write_all(record.as_bytes()));
    assert!(written.is_ok(), "cannot append to {}", path.display());

    client.shutdown().unwrap();
    handle.join();
}

/// The acceptance pin for the prepared-query path: a prepared
/// `execute_prepared`, an ad-hoc `query`, and a direct
/// `Catalog::execute_sql_cached` call answer bit-for-bit identically for the
/// same SQL — across ungrouped and grouped shapes.
#[test]
fn prepared_adhoc_and_direct_catalog_answers_agree_bit_for_bit() {
    let handle = spawn(ServerConfig::default()).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    load_toy(&mut client);
    let catalog = direct_catalog();
    let estimators = ["bucket", "naive"];
    client.session_open("parity", &estimators).unwrap();

    let cases = [
        ("q1", "SELECT SUM(employees) FROM companies"),
        (
            "q2",
            "SELECT AVG(employees) FROM companies WHERE employees < 5000",
        ),
        ("q3", "SELECT SUM(employees) FROM companies GROUP BY state"),
    ];
    for (name, sql) in cases {
        let (universes, _) = client.prepare("parity", name, sql).unwrap();
        let adhoc = client.query(sql, &estimators, true).unwrap();
        let mut prepared = None;
        for _ in 0..3 {
            prepared = Some(client.execute_prepared("parity", name).unwrap());
        }
        let prepared = prepared.unwrap();
        assert!(
            prepared.cache_hit,
            "{sql}: repeated prepared executes are hits"
        );
        assert_eq!(prepared.groups.len() as u64, universes, "{sql}");
        assert_eq!(prepared.grouped, adhoc.grouped, "{sql}");

        // Prepared vs ad-hoc: identical canonical rows.
        assert_eq!(prepared.groups.len(), adhoc.groups.len(), "{sql}");
        for (p, a) in prepared.groups.iter().zip(&adhoc.groups) {
            assert_eq!(p.result.canonical(), a.result.canonical(), "{sql}");
        }
        // Prepared vs direct catalog calls (the expected_rows helper routes
        // through selection_sql + execute_sql_grouped_cached — and for the
        // ungrouped cases also pin `execute_sql_cached` itself below).
        let expected = expected_rows(&catalog, sql, &estimators);
        for (p, want) in prepared.groups.iter().zip(&expected) {
            assert_eq!(p.result.canonical(), want.canonical(), "{sql}");
        }
        if !prepared.grouped {
            let direct = catalog
                .execute_sql_cached(sql, CorrectionMethod::Bucket)
                .unwrap();
            let got = prepared.single().unwrap();
            assert_eq!(got.observed.to_bits(), direct.observed.to_bits(), "{sql}");
            assert_eq!(
                got.corrected.map(f64::to_bits),
                direct.corrected.map(f64::to_bits),
                "{sql}"
            );
        }
    }

    // Per-session counters surfaced in stats.
    let stats = client.stats().unwrap();
    let session = stats.sessions.iter().find(|s| s.name == "parity").unwrap();
    assert_eq!(session.estimators, vec!["bucket", "naive"]);
    assert_eq!(session.prepared, 3);
    assert_eq!(session.executes, 9);
    assert!(session.frozen_hits >= 6, "repeats hit frozen snapshots");
    client.session_close("parity").unwrap();
    handle.shutdown();
}

/// Satellite pin: the frame bound is configurable, oversized lines answer a
/// structured `frame_too_large` error, and within-bound requests still work.
#[test]
fn oversized_frames_answer_frame_too_large() {
    let config = ServerConfig {
        max_frame_bytes: 4096,
        ..ServerConfig::default()
    };
    let handle = spawn(config).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    client.ping().unwrap();

    // A request line beyond the bound: structured error, then the server
    // drops the connection (it can never find the line boundary).
    let huge = format!(
        r#"{{"op":"query","sql":"SELECT SUM(x) FROM t -- {}"}}"#,
        "x".repeat(8192)
    );
    match client.send_raw(&huge) {
        Ok(Response::Error(e)) => {
            assert_eq!(e.code, ErrorCode::FrameTooLarge, "{}", e.message);
            assert!(e.message.contains("4096"), "{}", e.message);
        }
        other => panic!("expected frame_too_large, got {other:?}"),
    }
    // Fresh connection: normal requests keep working under the bound.
    let mut client = Client::connect(handle.addr()).unwrap();
    client.ping().unwrap();
    handle.shutdown();
}

#[test]
fn the_frame_bound_applies_to_the_accumulated_line_not_per_chunk() {
    let config = ServerConfig {
        max_frame_bytes: 4096,
        ..ServerConfig::default()
    };
    let handle = spawn(config).unwrap();
    // 8 KiB with no newline, sent in 1 KiB chunks: every individual read
    // is under the bound, the accumulated partial frame is not — the
    // server must answer `frame_too_large` without ever seeing a line end.
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    let chunk = [b'x'; 1024];
    for _ in 0..8 {
        if stream.write_all(&chunk).is_err() {
            break; // the server may already have answered and closed
        }
    }
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut raw = Vec::new();
    let mut buf = [0u8; 256];
    loop {
        match stream.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => raw.extend_from_slice(&buf[..n]),
        }
    }
    let text = String::from_utf8_lossy(&raw);
    let line = text.lines().next().unwrap_or_default();
    match Response::decode(line) {
        Ok(Response::Error(e)) => {
            assert_eq!(e.code, ErrorCode::FrameTooLarge, "{}", e.message);
            assert!(e.message.contains("4096"), "{}", e.message);
        }
        other => panic!("expected frame_too_large, got {other:?} from {text:?}"),
    }
    handle.shutdown();
}

#[test]
fn idle_connections_are_reaped_after_the_timeout_and_active_ones_survive() {
    let handle = spawn(ServerConfig {
        idle_timeout: Some(Duration::from_millis(150)),
        ..ServerConfig::default()
    })
    .unwrap();
    let mut idle = TcpStream::connect(handle.addr()).unwrap();
    // A connection dribbling bytes but never completing a frame is idle
    // too: only complete frames reset the deadline.
    let mut dribbler = TcpStream::connect(handle.addr()).unwrap();
    let mut active = Client::connect(handle.addr()).unwrap();
    // The active connection outlives several windows because every request
    // resets its deadline…
    for _ in 0..8 {
        active.ping().unwrap();
        let _ = dribbler.write_all(b"x");
        std::thread::sleep(Duration::from_millis(50));
    }
    // …while the idle one was silently closed: EOF, no farewell frame.
    idle.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut buf = [0u8; 64];
    match idle.read(&mut buf) {
        Ok(0) | Err(_) => {}
        Ok(n) => panic!(
            "idle connection got {n} bytes instead of a silent close: {:?}",
            String::from_utf8_lossy(&buf[..n])
        ),
    }
    dribbler
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    match dribbler.read(&mut buf) {
        Ok(0) | Err(_) => {}
        Ok(n) => panic!("dribbling connection got {n} bytes instead of a silent close"),
    }
    let stats = active.stats().unwrap();
    assert!(
        stats.conn.idle_reaped >= 2,
        "idle_reaped={} after two reapable connections",
        stats.conn.idle_reaped
    );
    active.ping().unwrap();
    handle.shutdown();
}

#[test]
fn server_info_reports_identity_and_sessions() {
    let handle = spawn(ServerConfig::default()).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    let info = client.server_info().unwrap();
    assert_eq!(info.version, env!("CARGO_PKG_VERSION"));
    assert_eq!(info.protocol, uu_server::protocol::PROTOCOL_VERSION);
    assert_eq!(info.fronts, vec!["json".to_string()]);
    assert_eq!(info.active_sessions, 0);
    assert!(info.workers >= 1);
    client.session_open("s", &["bucket"]).unwrap();
    let info = client.server_info().unwrap();
    assert_eq!(info.active_sessions, 1);
    handle.shutdown();
}

#[test]
fn warm_verb_prefills_the_cache() {
    let handle = spawn(ServerConfig::default()).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    load_toy(&mut client);
    let sql = "SELECT SUM(employees) FROM companies GROUP BY state";
    let (universes, already) = client.warm(sql).unwrap();
    assert_eq!(universes, 2);
    assert!(!already);
    let (_, already) = client.warm(sql).unwrap();
    assert!(already, "second warm is a no-op");
    let reply = client.query(sql, &["bucket"], true).unwrap();
    assert!(reply.cache_hit, "query after warm is a pure hit");
    let stats = client.stats().unwrap();
    assert!(
        stats.projection.builds >= 1,
        "warm materializes the columnar projection (builds={})",
        stats.projection.builds
    );
    assert!(
        stats.projection.bytes > 0,
        "a current projection reports its footprint"
    );
    handle.shutdown();
}

#[test]
fn unknown_estimator_is_a_structured_error_and_the_connection_survives() {
    let handle = spawn(ServerConfig::default()).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    load_toy(&mut client);

    match client.query("SELECT SUM(employees) FROM companies", &["chao2000"], true) {
        Err(ClientError::Server(e)) => {
            assert_eq!(e.code, ErrorCode::UnknownEstimator);
            assert!(e.message.contains("chao2000"), "{}", e.message);
            assert_eq!(
                e.accepted,
                vec!["naive", "freq", "bucket", "monte-carlo", "policy"]
            );
        }
        other => panic!("expected a structured error, got {other:?}"),
    }
    // Same connection, next request works.
    let reply = client
        .query("SELECT SUM(employees) FROM companies", &["bucket"], true)
        .unwrap();
    assert_eq!(reply.single().unwrap().observed, 13_300.0);
    handle.shutdown();
}

#[test]
fn malformed_and_invalid_requests_answer_with_codes_not_disconnects() {
    let handle = spawn(ServerConfig::default()).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    load_toy(&mut client);

    let expect_code = |response: Response, code: ErrorCode| match response {
        Response::Error(e) => assert_eq!(e.code, code, "{}", e.message),
        other => panic!("expected {code:?}, got {}", other.encode()),
    };
    expect_code(
        client.send_raw("this is not json").unwrap(),
        ErrorCode::MalformedRequest,
    );
    expect_code(
        client.send_raw(r#"{"op":"fly_to_the_moon"}"#).unwrap(),
        ErrorCode::MalformedRequest,
    );
    expect_code(
        client
            .send_raw(r#"{"op":"query","sql":"SELEKT stuff"}"#)
            .unwrap(),
        ErrorCode::Parse,
    );
    expect_code(
        client
            .send_raw(r#"{"op":"query","sql":"SELECT SUM(x) FROM missing"}"#)
            .unwrap(),
        ErrorCode::UnknownTable,
    );
    expect_code(
        client
            .send_raw(r#"{"op":"query","sql":"SELECT SUM(nope) FROM companies"}"#)
            .unwrap(),
        ErrorCode::Table,
    );
    // Re-registering without append is refused; appending works.
    let reload = |append| {
        Request::LoadCsv(LoadCsvRequest {
            table: "companies".into(),
            columns: vec![
                ("company".into(), "str".into()),
                ("employees".into(), "float".into()),
                ("state".into(), "str".into()),
            ],
            entity_column: "company".into(),
            source_column: "worker".into(),
            csv: "worker,company,employees,state\n7,F,50,CA\n".into(),
            append,
        })
    };
    expect_code(
        client.request(&reload(false)).unwrap(),
        ErrorCode::DuplicateTable,
    );
    match client.request(&reload(true)).unwrap() {
        Response::Loaded {
            observations,
            entities,
            ..
        } => {
            assert_eq!(observations, 1);
            assert_eq!(entities, 5);
        }
        other => panic!("{}", other.encode()),
    }
    // The connection survived all of it.
    let reply = client
        .query("SELECT COUNT(*) FROM companies", &["naive"], true)
        .unwrap();
    assert_eq!(reply.single().unwrap().observed, 5.0);
    handle.shutdown();
}

#[test]
fn byte_budget_config_bounds_the_cache_and_is_reported() {
    let config = ServerConfig {
        cache_bytes: Some(1), // absurdly small: every new selection evicts the old
        ..ServerConfig::default()
    };
    let handle = spawn(config).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    load_toy(&mut client);
    let a = "SELECT SUM(employees) FROM companies";
    let b = "SELECT SUM(employees) FROM companies GROUP BY state";
    client.query(a, &["bucket"], true).unwrap();
    client.query(b, &["bucket"], true).unwrap();
    client.query(a, &["bucket"], true).unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(stats.cache.byte_budget, Some(1.0));
    assert!(
        stats.cache.evictions >= 2,
        "a 1-byte budget evicts on every alternation (evictions={})",
        stats.cache.evictions
    );
    assert_eq!(stats.cache.len, 1, "only the newest selection is retained");
    handle.shutdown();
}

#[test]
fn ttl_config_expires_idle_selections() {
    let config = ServerConfig {
        cache_ttl: Some(std::time::Duration::from_millis(20)),
        ..ServerConfig::default()
    };
    let handle = spawn(config).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    load_toy(&mut client);
    let sql = "SELECT SUM(employees) FROM companies";
    let cold = client.query(sql, &["bucket"], true).unwrap();
    assert!(!cold.cache_hit);
    std::thread::sleep(std::time::Duration::from_millis(50));
    let after = client.query(sql, &["bucket"], true).unwrap();
    assert!(!after.cache_hit, "the TTL expired the selection");
    assert_eq!(
        after.single().unwrap().canonical(),
        cold.single().unwrap().canonical(),
        "expiry only costs time, never changes answers"
    );
    let stats = client.stats().unwrap();
    assert!(stats.cache.expirations >= 1);
    assert_eq!(stats.cache.ttl_ms, Some(20.0));
    handle.shutdown();
}

#[test]
fn shutdown_verb_drains_the_server() {
    let handle = spawn(ServerConfig::default()).unwrap();
    let addr = handle.addr();
    let mut client = Client::connect(addr).unwrap();
    client.ping().unwrap();
    client.shutdown().unwrap();
    handle.join();
    // The listener is gone; a fresh connection must fail (possibly after the
    // OS drains the backlog, hence the retry loop).
    let refused = (0..50).any(|_| {
        std::thread::sleep(std::time::Duration::from_millis(20));
        match Client::connect(addr) {
            Err(_) => true,
            Ok(mut c) => c.ping().is_err(),
        }
    });
    assert!(refused, "server kept serving after shutdown");
}
