//! Durability integration tests: the observation WAL, snapshot checkpoints
//! and crash recovery must never lose a committed batch.
//!
//! Three layers of coverage:
//!
//! 1. **Torn-tail exhaustion** — the WAL of a known batch sequence is
//!    truncated at *every* byte offset inside its final record; recovery
//!    must never panic, must report the exact torn-byte count, and must
//!    reproduce the pre-final-record state bit-for-bit.
//! 2. **SIGKILL mid-ingest** — a real `uu-server` child process is killed
//!    with SIGKILL while a client streams appends; a restart on the same
//!    `--data-dir` must recover every acknowledged batch (the replayed
//!    record count defines the reference run) and the first post-restart
//!    query on the previously-hot selection must be a profile-cache hit.
//! 3. **Clean shutdown** — the `shutdown` verb writes a final checkpoint,
//!    so a restart replays zero WAL records and still serves the first
//!    query from the re-warmed cache.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::{Duration, Instant};

use uu_query::catalog::Catalog;
use uu_query::exec::CorrectionMethod;
use uu_query::schema::{ColumnType, Schema};
use uu_query::table::IntegratedTable;
use uu_query::value::Value;
use uu_server::client::Client;
use uu_server::protocol::{LoadCsvRequest, Request, Response};
use uu_server::server::{spawn, ServerConfig};
use uu_server::service::{Service, SessionCtx};
use uu_store::{FsyncPolicy, Store};

const SQL: &str = "SELECT SUM(employees) FROM companies";

/// A fresh scratch directory per call (`std::env::temp_dir()` is shared, so
/// the name carries the pid and a counter).
fn scratch(tag: &str) -> PathBuf {
    static COUNTER: AtomicU32 = AtomicU32::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("uu-durability-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn columns() -> Vec<(String, ColumnType)> {
    vec![
        ("company".to_string(), ColumnType::Str),
        ("employees".to_string(), ColumnType::Float),
    ]
}

/// Deterministic batch `i`: one observation of a fresh entity.
fn batch(i: u32) -> Vec<(u32, Vec<Value>)> {
    vec![(
        i,
        vec![
            Value::Str(format!("E{i}")),
            Value::Float(100.0 + f64::from(i)),
        ],
    )]
}

/// The canonical answer for a catalog state (cached path, so the comparison
/// also exercises the replay-refrozen profile entries).
fn answer(catalog: &Catalog) -> String {
    format!(
        "{:?}",
        catalog
            .execute_sql_cached(SQL, CorrectionMethod::Bucket)
            .unwrap()
    )
}

/// A catalog holding `fresh + (records - 1)` appended batches, built through
/// the same staged paths the server uses — the recovery reference.
fn reference_catalog(records: u32) -> Catalog {
    let mut catalog = Catalog::new();
    let mut staged = IntegratedTable::new("companies", Schema::new(columns()), "company").unwrap();
    for (source, values) in &batch(0) {
        staged.insert_observation(*source, values.clone()).unwrap();
    }
    catalog.register(staged).unwrap();
    for i in 1..records {
        catalog.append_observations("companies", batch(i)).unwrap();
    }
    catalog
}

/// Layer 1: truncate the WAL at every byte offset of its final record.
/// Recovery must be total — no panic, no error, no lost committed batch —
/// and must account for every discarded byte.
#[test]
fn torn_wal_tail_never_loses_a_committed_batch() {
    const RECORDS: u32 = 4;

    // Write a WAL of RECORDS batches (1 fresh load + 3 appends) through the
    // real store API, tracking the byte length after each record so the
    // final record's frame boundaries are known exactly.
    let writer_dir = scratch("torn-writer");
    let store = Store::open(&writer_dir, FsyncPolicy::Off, u64::MAX, u64::MAX).unwrap();
    let mut catalog = Catalog::new();
    let first = batch(0);
    store
        .log_fresh("companies", &columns(), "company", &first)
        .unwrap();
    let mut staged = IntegratedTable::new("companies", Schema::new(columns()), "company").unwrap();
    for (source, values) in &first {
        staged.insert_observation(*source, values.clone()).unwrap();
    }
    catalog.register(staged).unwrap();
    for i in 1..RECORDS {
        let version_before = catalog.get("companies").unwrap().version();
        let b = batch(i);
        store.log_append("companies", version_before, &b).unwrap();
        catalog.append_observations("companies", b).unwrap();
    }
    store.flush().unwrap();
    let full = std::fs::read(writer_dir.join("observations.wal")).unwrap();
    let full_len = full.len();
    // Frame boundary of the final record: scan the length prefixes.
    let mut prefix_len = 0usize;
    for _ in 0..RECORDS - 1 {
        let len = u32::from_le_bytes(full[prefix_len..prefix_len + 4].try_into().unwrap());
        prefix_len += 8 + len as usize;
    }
    assert!(prefix_len < full_len, "final record must be non-empty");

    let want_partial = answer(&reference_catalog(RECORDS - 1));
    let want_full = answer(&reference_catalog(RECORDS));

    // Every cut inside the final record loses exactly that record — the
    // RECORDS-1 committed ones before it must survive bit-for-bit.
    for cut in prefix_len..full_len {
        let dir = scratch("torn-cut");
        std::fs::write(dir.join("observations.wal"), &full[..cut]).unwrap();
        let store = Store::open(&dir, FsyncPolicy::Off, u64::MAX, u64::MAX).unwrap();
        let mut recovered = Catalog::new();
        let report = store.recover(&mut recovered).unwrap();
        assert_eq!(
            report.truncated_tail_bytes,
            (cut - prefix_len) as u64,
            "cut at byte {cut}"
        );
        assert_eq!(report.replayed_records, u64::from(RECORDS) - 1);
        assert_eq!(answer(&recovered), want_partial, "cut at byte {cut}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    // The untruncated WAL recovers everything.
    let dir = scratch("torn-intact");
    std::fs::write(dir.join("observations.wal"), &full).unwrap();
    let store = Store::open(&dir, FsyncPolicy::Off, u64::MAX, u64::MAX).unwrap();
    let mut recovered = Catalog::new();
    let report = store.recover(&mut recovered).unwrap();
    assert_eq!(report.truncated_tail_bytes, 0);
    assert_eq!(report.replayed_records, u64::from(RECORDS));
    assert_eq!(answer(&recovered), want_full);
}

const KILL_CSV: &str = "\
worker,company,employees
0,A,1000
0,B,2000
1,B,2000
1,D,10000
";

fn load_request() -> Request {
    Request::LoadCsv(LoadCsvRequest {
        table: "companies".to_string(),
        columns: vec![
            ("company".to_string(), "str".to_string()),
            ("employees".to_string(), "float".to_string()),
        ],
        entity_column: "company".to_string(),
        source_column: "worker".to_string(),
        csv: KILL_CSV.to_string(),
        append: false,
    })
}

fn append_csv(i: u32) -> String {
    format!("worker,company,employees\n{i},X{i},{}\n", 100 + i)
}

/// The `uu-server` binary next to this test executable, when the bins were
/// built (`target/<profile>/deps/<test>` → `target/<profile>/uu-server`).
fn server_bin() -> Option<PathBuf> {
    let exe = std::env::current_exe().ok()?;
    let bin = exe.parent()?.parent()?.join("uu-server");
    bin.exists().then_some(bin)
}

/// Layer 2: SIGKILL a real server mid-ingest, restart on the same data dir,
/// and pin the recovered answer bit-for-bit against an unkilled reference
/// run that ingested exactly the replayed batches.
#[test]
fn sigkill_mid_append_recovers_every_acknowledged_batch() {
    let Some(bin) = server_bin() else {
        eprintln!("skipping: uu-server binary not built next to the test executable");
        return;
    };
    let data_dir = scratch("sigkill-data");
    let port_file = data_dir.join("port");

    let mut child = std::process::Command::new(&bin)
        .arg("--addr")
        .arg("127.0.0.1:0")
        .arg("--port-file")
        .arg(&port_file)
        .arg("--data-dir")
        .arg(&data_dir)
        .arg("--fsync")
        .arg("off")
        .arg("--checkpoint-rows")
        .arg("1000000")
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn uu-server");
    let deadline = Instant::now() + Duration::from_secs(20);
    let addr = loop {
        if let Ok(text) = std::fs::read_to_string(&port_file) {
            if text.ends_with('\n') {
                break text.trim().to_string();
            }
        }
        assert!(
            Instant::now() < deadline,
            "server never wrote its port file"
        );
        std::thread::sleep(Duration::from_millis(10));
    };

    // Load, make the selection hot through the cached path, then checkpoint
    // so the snapshot carries the cached selection and the WAL is empty.
    let mut client = Client::connect(&addr).unwrap();
    assert!(matches!(
        client.request(&load_request()).unwrap(),
        Response::Loaded { .. }
    ));
    let warm = client.query(SQL, &[], true).unwrap();
    assert!(!warm.cache_hit, "first query is the cold fill");
    assert!(client.query(SQL, &[], true).unwrap().cache_hit);
    let (tables, bytes) = client.checkpoint().unwrap();
    assert_eq!(tables, 1);
    assert!(bytes > 0);

    // Stream deterministic appends from a second connection until the
    // server dies under them.
    let appender_addr = addr.clone();
    let appender = std::thread::spawn(move || {
        let Ok(mut client) = Client::connect(&appender_addr) else {
            return;
        };
        for i in 0..100_000u32 {
            if client
                .append_stream("companies", "worker", &append_csv(i))
                .is_err()
            {
                break;
            }
        }
    });
    std::thread::sleep(Duration::from_millis(200));
    child.kill().expect("SIGKILL the server");
    let _ = child.wait();
    appender.join().unwrap();

    // Restart in-process on the same data dir.
    let config = ServerConfig {
        data_dir: Some(data_dir.clone()),
        fsync: FsyncPolicy::Off,
        ..ServerConfig::default()
    };
    let handle = spawn(config).expect("restart on the same --data-dir");
    let mut client = Client::connect(handle.addr()).unwrap();
    let stats = client.stats().unwrap();
    assert!(
        stats.storage.recovered_tables >= 1,
        "snapshot recovery ran: {:?}",
        stats.storage
    );
    let replayed = stats.storage.replayed_records;
    let reply = client.query(SQL, &[], true).unwrap();
    assert!(
        reply.cache_hit,
        "first post-restart query must hit the re-warmed profile cache"
    );

    // Reference: an unkilled in-process service that ingests the load plus
    // exactly the batches the WAL preserved.
    let reference = Service::new(Catalog::new(), 0);
    let mut ctx = SessionCtx::new();
    assert!(matches!(
        reference.dispatch(&mut ctx, load_request()),
        Response::Loaded { .. }
    ));
    for i in 0..replayed {
        let response = reference.dispatch(
            &mut ctx,
            Request::AppendStream {
                table: "companies".to_string(),
                source_column: "worker".to_string(),
                csv: append_csv(i as u32),
            },
        );
        assert!(matches!(response, Response::Appended { .. }));
    }
    let want = match reference.dispatch(
        &mut ctx,
        Request::Query(uu_server::protocol::QueryRequest {
            sql: SQL.to_string(),
            estimators: Vec::new(),
            cached: true,
            trace: false,
        }),
    ) {
        Response::Query(reply) => reply,
        other => panic!("reference query failed: {}", other.encode()),
    };
    assert_eq!(
        format!("{:?}", reply.groups),
        format!("{:?}", want.groups),
        "recovered answer must be bit-for-bit the unkilled run's answer \
         ({replayed} replayed records)"
    );

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&data_dir);
}

/// Layer 3: a clean `shutdown` flushes and checkpoints, so the next start
/// replays zero WAL records and still serves the first query hot.
#[test]
fn clean_shutdown_restarts_with_an_empty_wal_and_a_warm_cache() {
    let data_dir = scratch("clean-shutdown");

    let config = ServerConfig {
        data_dir: Some(data_dir.clone()),
        fsync: FsyncPolicy::Batch,
        ..ServerConfig::default()
    };
    let handle = spawn(config).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    assert!(matches!(
        client.request(&load_request()).unwrap(),
        Response::Loaded { .. }
    ));
    client
        .append_stream("companies", "worker", &append_csv(7))
        .unwrap();
    let before = client.query(SQL, &[], true).unwrap();
    client.shutdown().unwrap();
    handle.join();

    let config = ServerConfig {
        data_dir: Some(data_dir.clone()),
        fsync: FsyncPolicy::Batch,
        ..ServerConfig::default()
    };
    let handle = spawn(config).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(
        stats.storage.replayed_records, 0,
        "clean shutdown leaves nothing to replay: {:?}",
        stats.storage
    );
    assert_eq!(stats.storage.recovered_tables, 1);
    let after = client.query(SQL, &[], true).unwrap();
    assert!(after.cache_hit, "restart re-warms the profile cache");
    assert_eq!(
        format!("{:?}", after.groups),
        format!("{:?}", before.groups),
        "restart preserves the answer bit-for-bit"
    );
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&data_dir);
}
