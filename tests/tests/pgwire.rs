//! Loopback tests for the pgwire-lite front: raw PostgreSQL wire messages
//! over a plain socket (the same driver CI uses — no `psql` anywhere).
//!
//! The front must be a pure framing over `Service::dispatch`: every cell it
//! returns is re-derivable from the JSON protocol's answers for the same SQL
//! (`panel_rows` is shared between the server and these expectations, so the
//! comparison pins the dispatch path, not the formatter).

use uu_server::client::Client;
use uu_server::pgwire::{panel_rows, PgClient};
use uu_server::protocol::{LoadCsvRequest, Request, Response};
use uu_server::server::{spawn, ServerConfig};

const TOY_CSV: &str = "\
worker,company,employees,state
0,A,1000,CA
0,B,2000,CA
0,D,10000,WA
1,B,2000,CA
1,D,10000,WA
2,D,10000,WA
3,D,10000,WA
4,A,1000,CA
4,E,300,CA
";

fn spawn_with_pgwire() -> uu_server::ServerHandle {
    let config = ServerConfig {
        pgwire_addr: Some("127.0.0.1:0".to_string()),
        ..ServerConfig::default()
    };
    spawn(config).unwrap()
}

fn load_toy(addr: std::net::SocketAddr) {
    let mut client = Client::connect(addr).unwrap();
    let response = client
        .request(&Request::LoadCsv(LoadCsvRequest {
            table: "companies".into(),
            columns: vec![
                ("company".into(), "str".into()),
                ("employees".into(), "float".into()),
                ("state".into(), "str".into()),
            ],
            entity_column: "company".into(),
            source_column: "worker".into(),
            csv: TOY_CSV.into(),
            append: false,
        }))
        .unwrap();
    assert!(matches!(response, Response::Loaded { .. }));
}

/// The expectation for one SQL text, computed through the *JSON* protocol
/// (one query per registry estimator) and laid out by the same `panel_rows`
/// the pgwire front uses — so agreement means both fronts answered from the
/// same dispatch with the same numbers.
fn expected_panel(
    addr: std::net::SocketAddr,
    sql: &str,
) -> (Vec<String>, Vec<Vec<Option<String>>>) {
    let mut client = Client::connect(addr).unwrap();
    let replies: Vec<(&'static str, _)> = uu_core::engine::EstimatorKind::all()
        .into_iter()
        .map(|kind| {
            let reply = client.query(sql, &[kind.name()], true).unwrap();
            (kind.name(), reply)
        })
        .collect();
    panel_rows(&replies)
}

#[test]
fn simple_query_answers_one_row_per_estimator_matching_the_json_front() {
    let handle = spawn_with_pgwire();
    load_toy(handle.addr());
    let pg_addr = handle.pgwire_addr().expect("pgwire front enabled");

    let mut pg = PgClient::connect(pg_addr).unwrap();
    for sql in [
        "SELECT SUM(employees) FROM companies",
        "SELECT AVG(employees) FROM companies WHERE employees < 5000",
        "SELECT COUNT(*) FROM companies",
        "SELECT MIN(employees) FROM companies",
    ] {
        let result = pg.simple_query(sql).unwrap();
        let (want_columns, want_rows) = expected_panel(handle.addr(), sql);
        assert_eq!(result.columns, want_columns, "{sql}");
        assert_eq!(result.rows, want_rows, "{sql}");
        assert_eq!(
            result.rows.len(),
            uu_core::engine::EstimatorKind::all().len(),
            "one row per registry estimator: {sql}"
        );
        assert_eq!(result.command_tag, format!("SELECT {}", result.rows.len()));
    }
    handle.shutdown();
}

#[test]
fn grouped_queries_lead_with_the_group_column() {
    let handle = spawn_with_pgwire();
    load_toy(handle.addr());
    let pg_addr = handle.pgwire_addr().unwrap();
    let sql = "SELECT SUM(employees) FROM companies GROUP BY state";

    let mut pg = PgClient::connect(pg_addr).unwrap();
    let result = pg.simple_query(sql).unwrap();
    let (want_columns, want_rows) = expected_panel(handle.addr(), sql);
    assert_eq!(result.columns, want_columns);
    assert_eq!(result.columns[0], "group");
    assert_eq!(result.rows, want_rows);
    // 2 states × the registry panel.
    assert_eq!(
        result.rows.len(),
        2 * uu_core::engine::EstimatorKind::all().len()
    );
    let groups: std::collections::BTreeSet<_> =
        result.rows.iter().map(|r| r[0].clone().unwrap()).collect();
    assert_eq!(
        groups.into_iter().collect::<Vec<_>>(),
        vec!["CA".to_string(), "WA".to_string()]
    );
    handle.shutdown();
}

#[test]
fn errors_are_error_responses_and_the_connection_survives() {
    let handle = spawn_with_pgwire();
    load_toy(handle.addr());
    let mut pg = PgClient::connect(handle.pgwire_addr().unwrap()).unwrap();

    let err = pg.simple_query("SELEKT nonsense").unwrap_err();
    assert_eq!(err.sqlstate, "42601", "{err}");
    let err = pg.simple_query("SELECT SUM(x) FROM missing").unwrap_err();
    assert_eq!(err.sqlstate, "42P01", "{err}");
    let err = pg
        .simple_query("SELECT SUM(nope) FROM companies")
        .unwrap_err();
    assert_eq!(err.sqlstate, "42703", "{err}");

    // Empty query: a clean empty response.
    let empty = pg.simple_query("   ").unwrap();
    assert!(empty.rows.is_empty());
    assert!(empty.command_tag.is_empty());

    // The connection survived all of it.
    let result = pg
        .simple_query("SELECT SUM(employees) FROM companies")
        .unwrap();
    assert!(!result.rows.is_empty());
    handle.shutdown();
}

#[test]
fn both_fronts_share_one_catalog_and_one_request_counter() {
    let handle = spawn_with_pgwire();
    load_toy(handle.addr());
    let mut json = Client::connect(handle.addr()).unwrap();
    let requests_before = json.stats().unwrap().requests;

    let mut pg = PgClient::connect(handle.pgwire_addr().unwrap()).unwrap();
    let result = pg
        .simple_query("SELECT SUM(employees) FROM companies")
        .unwrap();
    assert!(!result.rows.is_empty());

    let stats = json.stats().unwrap();
    assert!(
        stats.requests > requests_before,
        "pgwire queries dispatch through the shared service ({} -> {})",
        requests_before,
        stats.requests
    );
    // server_info reports both fronts.
    let info = json.server_info().unwrap();
    assert_eq!(info.fronts, vec!["json".to_string(), "pgwire".to_string()]);
    handle.shutdown();
}

#[test]
fn pgwire_front_is_off_by_default() {
    let handle = spawn(ServerConfig::default()).unwrap();
    assert_eq!(handle.pgwire_addr(), None);
    let mut json = Client::connect(handle.addr()).unwrap();
    assert_eq!(json.server_info().unwrap().fronts, vec!["json".to_string()]);
    handle.shutdown();
}
