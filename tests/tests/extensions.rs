//! Tests for the engineering extensions built on top of the paper:
//! the self-selecting policy estimator, bootstrap intervals, the stopping
//! rule monitor, per-bucket bounds, GROUP BY execution, and behaviour on
//! negative attribute values (the §3.3.2 aside the paper does not evaluate).

use uu_core::bootstrap::{bootstrap_interval, BootstrapConfig};
use uu_core::bound::{bucketed_sum_upper_bound, sum_upper_bound, UpperBoundConfig};
use uu_core::bucket::DynamicBucketEstimator;
use uu_core::estimate::SumEstimator;
use uu_core::monitor::{EstimateMonitor, StoppingRule};
use uu_core::naive::NaiveEstimator;
use uu_core::policy::PolicyEstimator;
use uu_core::recommend::Recommendation;
use uu_core::sample::{replay_checkpoints, SampleView};
use uu_datagen::realworld;
use uu_datagen::scenario;

/// The policy estimator should match MC under streakers and bucket on
/// healthy streams — and never do worse than the worst of the two.
#[test]
fn policy_tracks_the_right_estimator_per_scenario() {
    let policy = PolicyEstimator::default();

    let healthy = scenario::figure6(20, 1.0, 1.0, 31);
    let (_, view) = replay_checkpoints(healthy.stream(), &[400]).remove(0);
    assert_eq!(policy.selected(&view), Recommendation::Bucket);
    let bucket = DynamicBucketEstimator::default().estimate_sum(&view);
    assert_eq!(policy.estimate_sum(&view), bucket);

    let streaked = scenario::streakers_only(3, 31);
    let (_, view) = replay_checkpoints(streaked.stream(), &[150]).remove(0);
    assert_eq!(policy.selected(&view), Recommendation::MonteCarlo);
    let truth = streaked.population.ground_truth_sum();
    let policy_est = policy.estimate_sum(&view).unwrap();
    let naive_est = NaiveEstimator::default().estimate_sum(&view).unwrap();
    assert!(
        (policy_est - truth).abs() <= (naive_est - truth).abs(),
        "policy ({policy_est}) should not lose to naive ({naive_est})"
    );
}

/// Bootstrap intervals on a real stream: narrow late, wide early, and the
/// truth should usually be bracketed once the estimate stabilises.
#[test]
fn bootstrap_interval_narrows_along_the_stream() {
    let d = realworld::tech_employment(5);
    let views = replay_checkpoints(d.stream(), &[150, 500]);
    let est = DynamicBucketEstimator::default();
    let cfg = BootstrapConfig {
        replicates: 100,
        ..Default::default()
    };
    let early = bootstrap_interval(&views[0].1, &est, cfg).unwrap();
    let late = bootstrap_interval(&views[1].1, &est, cfg).unwrap();
    let rel = |ci: &uu_core::bootstrap::BootstrapInterval| (ci.hi - ci.lo) / ci.median;
    assert!(
        rel(&late) < rel(&early),
        "interval failed to narrow: {} -> {}",
        rel(&early),
        rel(&late)
    );
}

/// The stopping rule should fire while answers still repeat themselves and
/// before the stream is exhausted on a saturating workload.
#[test]
fn monitor_stops_on_saturating_stream() {
    let s = scenario::figure6(10, 1.0, 1.0, 77); // 500 answers over N=100
    let mut monitor = EstimateMonitor::new(
        DynamicBucketEstimator::default(),
        25,
        StoppingRule::default(),
    );
    let mut stopped_at = None;
    for (item, value, source) in s.stream() {
        monitor.push(item, value, source);
        if monitor.should_stop() {
            stopped_at = Some(monitor.latest().unwrap().n);
            break;
        }
    }
    let n = stopped_at.expect("the monitor should stop before the stream ends");
    assert!(n < 500, "stopped too late: {n}");
    // And the estimate at stop is decent.
    let estimate = monitor.latest().unwrap().estimate.unwrap();
    let truth = s.population.ground_truth_sum();
    assert!(
        (estimate - truth).abs() / truth < 0.2,
        "stopped on a bad estimate: {estimate} vs {truth}"
    );
}

/// Per-bucket bounds are bounds: above the truth (at the bound's confidence)
/// and never looser than the global product bound.
#[test]
fn bucketed_bound_tightens_without_breaking() {
    let mut holds = 0;
    let mut tighter = 0;
    let reps = 10;
    for seed in 0..reps {
        let s = scenario::section64(40 + seed);
        let truth = s.population.ground_truth_sum();
        let (_, view) = replay_checkpoints(s.stream(), &[800]).remove(0);
        let buckets = DynamicBucketEstimator::default();
        let global = sum_upper_bound(&view, UpperBoundConfig::default()).unwrap();
        let bucketed =
            bucketed_sum_upper_bound(&view, &buckets, UpperBoundConfig::default()).unwrap();
        assert!(bucketed.phi_d_bound <= global.phi_d_bound + 1e-9);
        if bucketed.phi_d_bound >= truth {
            holds += 1;
        }
        if bucketed.phi_d_bound < global.phi_d_bound - 1e-9 {
            tighter += 1;
        }
    }
    assert!(
        holds >= reps - 1,
        "bucketed bound violated truth {holds}/{reps}"
    );
    // Tightening needs well-separated value clusters (see the unit test in
    // uu-core); on this near-saturated workload we only require that it
    // happens at all and never the reverse.
    assert!(
        tighter >= 1,
        "bucketed bound never tighter: {tighter}/{reps}"
    );
}

/// Negative attribute values (net losses): the estimators stay defined, the
/// dynamic bucket objective still only accepts improvements of Σ|Δ|, and the
/// corrected sum moves the observed sum toward the truth on average.
#[test]
fn negative_values_are_handled() {
    let d = realworld::tech_net_income(11);
    let truth = d.ground_truth_sum();
    let (_, view) = replay_checkpoints(d.stream(), &[400]).remove(0);
    assert!(
        view.min_value().unwrap() < 0.0,
        "sample should contain losses"
    );

    let naive = NaiveEstimator::default();
    let bucket = DynamicBucketEstimator::default();
    let naive_sum = naive.estimate_sum(&view).unwrap();
    let bucket_sum = bucket.estimate_sum(&view).unwrap();
    assert!(naive_sum.is_finite() && bucket_sum.is_finite());

    // Bucket never exceeds the unsplit |Δ| by construction.
    let nd = naive.estimate_delta(&view).abs_or_infinite();
    let bd = bucket.estimate_delta(&view).abs_or_infinite();
    assert!(bd <= nd + 1e-9);

    // The buckets partition into loss and profit ranges, so the reports
    // expose where the unknowns sit.
    let reports = bucket.bucketize(&view);
    assert!(!reports.is_empty());
    let total_c: u64 = reports.iter().map(|b| b.c).sum();
    assert_eq!(total_c, view.c());

    // Mixed-sign corrections have no direction guarantee (losses can cancel
    // the missing profits), but the estimate must stay in the truth's
    // neighbourhood rather than explode.
    assert!(
        (bucket_sum - truth).abs() / truth.abs() < 0.5,
        "bucket {bucket_sum} strayed from truth {truth}"
    );
    assert!(
        (naive_sum - truth).abs() / truth.abs() < 1.0,
        "naive {naive_sum} exploded"
    );
}

/// GROUP BY end-to-end over a generated workload: per-state corrected GDP
/// sums add up to the ungrouped corrected sum within estimator variance.
#[test]
fn grouped_sql_over_generated_data() {
    use uu_query::exec::{execute_sql, execute_sql_grouped, CorrectionMethod};
    use uu_query::schema::{ColumnType, Schema};
    use uu_query::table::IntegratedTable;
    use uu_query::value::Value;

    let d = realworld::us_gdp(21);
    let schema = Schema::new([
        ("state", ColumnType::Str),
        ("gdp", ColumnType::Float),
        ("region", ColumnType::Str),
    ]);
    let mut table = IntegratedTable::new("us_states", schema, "state").unwrap();
    for (item, value, source) in d.stream() {
        let (name, _) = realworld::US_STATE_GDP_2015_MUSD[item as usize];
        // Two coarse regions split by alphabetical half for test purposes.
        let region = if name < "M" { "early" } else { "late" };
        table
            .insert_observation(
                source,
                vec![Value::from(name), Value::from(value), Value::from(region)],
            )
            .unwrap();
    }
    let groups = execute_sql_grouped(
        &table,
        "SELECT SUM(gdp) FROM us_states GROUP BY region",
        CorrectionMethod::Naive,
    )
    .unwrap();
    assert_eq!(groups.len(), 2);
    let grouped_observed: f64 = groups.iter().map(|g| g.result.observed).sum();
    let whole = execute_sql(
        &table,
        "SELECT SUM(gdp) FROM us_states",
        CorrectionMethod::Naive,
    )
    .unwrap();
    assert!((grouped_observed - whole.observed).abs() < 1e-6);
    for g in &groups {
        if let Some(corrected) = g.result.corrected {
            assert!(corrected >= g.result.observed - 1e-9);
        }
    }
}

/// SQL parsing must never panic, whatever the input (fuzz-ish property).
#[test]
fn sql_parser_is_panic_free_on_garbage() {
    use uu_query::sql::parse;
    let samples = [
        "",
        " ",
        "SELECT",
        "SELECT SUM",
        "SELECT SUM(",
        "SELECT SUM(x) FROM t WHERE",
        "))((",
        "'",
        "''",
        "O'Brien",
        "SELECT SUM(x) FROM t WHERE a = 'b",
        "SELECT SUM(x) FROM t GROUP",
        "SELECT SUM(x) FROM t GROUP BY",
        "<= >= !=",
        "1234",
        "-",
        "-.",
        "SELECT COUNT(*) FROM t WHERE x = 1e",
        "é ü 漢字",
        "SELECT SUM(привет) FROM таблица",
    ];
    for s in samples {
        let _ = parse(s); // Result either way; must not panic.
    }
}

/// A smoke test that every estimator admits being boxed and mixed in one
/// heterogeneous collection (object safety of the public trait).
#[test]
fn estimators_are_object_safe_and_composable() {
    let sample = SampleView::from_value_multiplicities([(10.0, 2), (20.0, 3), (30.0, 1)]);
    let ests: Vec<Box<dyn SumEstimator>> = vec![
        Box::new(NaiveEstimator::default()),
        Box::new(uu_core::frequency::FrequencyEstimator::default()),
        Box::new(DynamicBucketEstimator::default()),
        Box::new(PolicyEstimator::default()),
        Box::new(uu_core::combined::frequency_in_bucket()),
    ];
    for est in &ests {
        let _ = est.estimate_delta(&sample);
        assert!(!est.name().is_empty());
    }
}
