//! Appendix F, Table 2: the paper's fully worked toy example, end to end.
//!
//! The universe has five companies {A, B, C, D, E}; C is never observed by
//! any source (the unknown unknown). Four sources report A, B, D with
//! multiplicities 1/2/4; a fifth source later adds {A, E}. The paper prints
//! the exact estimates of every estimator before and after s5 — these tests
//! assert them to the digit, both against the raw estimator API and through
//! the SQL engine.

use uu_core::bucket::DynamicBucketEstimator;
use uu_core::estimate::SumEstimator;
use uu_core::frequency::FrequencyEstimator;
use uu_core::naive::NaiveEstimator;
use uu_integration_tests::{toy_after, toy_before};
use uu_query::exec::{execute_sql, CorrectionMethod};
use uu_query::schema::{ColumnType, Schema};
use uu_query::table::IntegratedTable;
use uu_query::value::Value;

const GROUND_TRUTH: f64 = 1000.0 + 2000.0 + 900.0 + 10_000.0 + 300.0; // 14 200

#[test]
fn observed_sums_match_the_paper() {
    assert_eq!(toy_before().observed_sum(), 13_000.0);
    assert_eq!(toy_after().observed_sum(), 13_300.0);
}

#[test]
fn statistics_row_matches_the_paper() {
    let before = toy_before();
    assert_eq!(
        (before.n(), before.c(), before.freq().singletons()),
        (7, 3, 1)
    );
    let gamma2 = uu_stats::cv::cv_squared(before.freq()).unwrap();
    assert!((gamma2 - 0.1667).abs() < 1e-3, "γ̂² = {gamma2}");

    // Note: the paper's Table 2 header prints "n = 10" after s5, but every
    // formula in the table uses n = 9 — s5 = {A, E}. We follow the formulas.
    let after = toy_after();
    assert_eq!((after.n(), after.c(), after.freq().singletons()), (9, 4, 1));
    assert_eq!(uu_stats::cv::cv_squared(after.freq()), Some(0.0));
}

#[test]
fn naive_row() {
    let naive = NaiveEstimator::default();
    let before = naive.estimate_sum(&toy_before()).unwrap();
    assert!((before - 16_009.0).abs() < 0.5, "before {before}"); // paper: ≈ 16009
    let after = naive.estimate_sum(&toy_after()).unwrap();
    assert!((after - 14_962.5).abs() < 0.5, "after {after}"); // paper: ≈ 14962
}

#[test]
fn frequency_row() {
    let freq = FrequencyEstimator::default();
    let before = freq.estimate_sum(&toy_before()).unwrap();
    assert!((before - 13_694.0).abs() < 0.5, "before {before}"); // paper: ≈ 13694
    let after = freq.estimate_sum(&toy_after()).unwrap();
    assert!((after - 13_450.0).abs() < 1e-9, "after {after}"); // paper: = 13450
}

#[test]
fn bucket_row() {
    let bucket = DynamicBucketEstimator::default();
    let before = bucket.estimate_sum(&toy_before()).unwrap();
    assert!((before - 14_500.0).abs() < 1e-9, "before {before}"); // paper: = 14500
    let after = bucket.estimate_sum(&toy_after()).unwrap();
    assert!((after - 13_950.0).abs() < 1e-9, "after {after}"); // paper: = 13950
}

#[test]
fn bucket_is_the_most_accurate_as_the_paper_concludes() {
    for sample in [toy_before(), toy_after()] {
        let naive = NaiveEstimator::default().estimate_sum(&sample).unwrap();
        let freq = FrequencyEstimator::default().estimate_sum(&sample).unwrap();
        let bucket = DynamicBucketEstimator::default()
            .estimate_sum(&sample)
            .unwrap();
        let err = |e: f64| (e - GROUND_TRUTH).abs();
        assert!(err(bucket) < err(naive), "bucket should beat naive");
        assert!(err(bucket) < err(freq), "bucket should beat frequency");
    }
}

/// The same numbers through the full integration path: sources → table →
/// SQL → corrected result.
#[test]
fn end_to_end_through_the_query_engine() {
    let schema = Schema::new([
        ("company", ColumnType::Str),
        ("employees", ColumnType::Float),
    ]);
    let mut table = IntegratedTable::new("k", schema, "company").unwrap();
    fn push(table: &mut IntegratedTable, src: u32, name: &str, emp: f64) {
        table
            .insert_observation(src, vec![Value::from(name), Value::from(emp)])
            .unwrap();
    }
    // Sources s1..s4 (A:1, B:2, D:4).
    push(&mut table, 0, "A", 1000.0);
    push(&mut table, 0, "B", 2000.0);
    push(&mut table, 1, "B", 2000.0);
    for s in 0..4 {
        push(&mut table, s, "D", 10_000.0);
    }

    let sql = "SELECT SUM(employees) FROM k";
    let naive = execute_sql(&table, sql, CorrectionMethod::Naive).unwrap();
    assert!((naive.corrected.unwrap() - 16_009.0).abs() < 0.5);
    let bucket = execute_sql(&table, sql, CorrectionMethod::Bucket).unwrap();
    assert!((bucket.corrected.unwrap() - 14_500.0).abs() < 1e-9);

    // s5 arrives: {A, E}.
    push(&mut table, 4, "A", 1000.0);
    push(&mut table, 4, "E", 300.0);

    let naive = execute_sql(&table, sql, CorrectionMethod::Naive).unwrap();
    assert!((naive.corrected.unwrap() - 14_962.5).abs() < 1e-6);
    let freq = execute_sql(&table, sql, CorrectionMethod::Frequency).unwrap();
    assert!((freq.corrected.unwrap() - 13_450.0).abs() < 1e-6);
    let bucket = execute_sql(&table, sql, CorrectionMethod::Bucket).unwrap();
    assert!((bucket.corrected.unwrap() - 13_950.0).abs() < 1e-6);

    // Adding s5 improved every estimator, exactly as the table reads.
    assert!((bucket.corrected.unwrap() - GROUND_TRUTH).abs() < 300.0);
}
