//! Cross-crate guarantees of the shared work-stealing executor
//! (`uu_core::exec`):
//!
//! 1. **Nested determinism** — a grouped SQL query whose groups each run a
//!    parallel Monte-Carlo grid (the deepest nesting the workspace produces)
//!    returns bit-for-bit the results of the fully serial evaluation.
//! 2. **Bounded workers** — that same nested workload never drives the
//!    executor past its configured thread budget (asserted via the
//!    executor's own instrumentation).
//! 3. **Containment** — `std::thread::scope` appears nowhere in the
//!    workspace outside the executor module, so no parallel region can
//!    bypass the shared budget.

use uu_core::exec;
use uu_core::montecarlo::MonteCarloConfig;
use uu_query::exec::{execute_sql, execute_sql_grouped, CorrectionMethod};
use uu_query::schema::{ColumnType, Schema};
use uu_query::table::IntegratedTable;
use uu_query::value::Value;
use uu_stats::rng::Rng;

/// A table with several groups of lineage-bearing entities, sized so the
/// Monte-Carlo estimator is defined in every group.
fn grouped_table(groups: usize, per_group: usize, seed: u64) -> IntegratedTable {
    let schema = Schema::new([
        ("k", ColumnType::Str),
        ("v", ColumnType::Float),
        ("g", ColumnType::Str),
    ]);
    let mut t = IntegratedTable::new("t", schema, "k").unwrap();
    for g in 0..groups {
        let mut rng = Rng::new(seed ^ (g as u64).wrapping_mul(0x9E37_79B9));
        for i in 0..per_group {
            let item = rng.next_below(25 + g * 3);
            t.insert_observation(
                (i % 7) as u32,
                vec![
                    Value::from(format!("g{g}e{item}")),
                    Value::from((item + 1) as f64 * 10.0),
                    Value::from(format!("g{g}")),
                ],
            )
            .unwrap();
        }
    }
    t
}

#[test]
fn nested_grouped_monte_carlo_is_bit_for_bit_serial() {
    let table = grouped_table(6, 160, 11);
    let parallel_mc = CorrectionMethod::MonteCarlo(MonteCarloConfig::fast());
    let serial_mc = CorrectionMethod::MonteCarlo(MonteCarloConfig {
        parallel: false,
        ..MonteCarloConfig::fast()
    });

    // Parallel grouped run: groups fan out on the executor, each group's
    // Monte-Carlo grid nests inside a worker.
    let grouped = execute_sql_grouped(&table, "SELECT SUM(v) FROM t GROUP BY g", parallel_mc)
        .expect("grouped query runs");
    assert_eq!(grouped.len(), 6);

    // Serial reference: every group evaluated on its own through the
    // ungrouped path (`WHERE g = …` selects exactly the group's estimation
    // universe) with the serial Monte-Carlo grid.
    for row in &grouped {
        let Value::Str(g) = &row.key else {
            panic!("group keys are strings")
        };
        let reference = execute_sql(
            &table,
            &format!("SELECT SUM(v) FROM t WHERE g = '{g}'"),
            serial_mc,
        )
        .expect("reference query runs");
        assert_eq!(row.result.observed, reference.observed, "group {g}");
        assert_eq!(row.result.corrected, reference.corrected, "group {g}");
        assert_eq!(row.result.n_hat, reference.n_hat, "group {g}");
        assert_eq!(row.result.upper_bound, reference.upper_bound, "group {g}");
    }

    // Two identical parallel runs agree with each other too (scheduling is
    // never observable).
    let again = execute_sql_grouped(&table, "SELECT SUM(v) FROM t GROUP BY g", parallel_mc)
        .expect("grouped query runs");
    for (a, b) in grouped.iter().zip(&again) {
        assert_eq!(a.key, b.key);
        assert_eq!(a.result.corrected, b.result.corrected);
    }

    // Worker-budget instrumentation, checked in the same #[test] so no other
    // test of this binary drives the global executor concurrently (the
    // single-caller bound is `peak_workers <= threads`; concurrent callers
    // are allowed up to `callers + threads - 1`).
    let m = exec::global().metrics();
    assert!(m.regions > 0, "the workload must schedule through the pool");
    assert!(m.tasks > 0);
    assert!(
        m.peak_workers <= m.threads,
        "nested grouped+MonteCarlo run used {} workers, budget is {}",
        m.peak_workers,
        m.threads
    );
}

#[test]
fn thread_scope_is_confined_to_the_executor_module() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("..");
    let mut offenders = Vec::new();
    let mut stack = vec![root.join("crates"), root.join("examples")];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir).expect("workspace sources readable") {
            let path = entry.expect("dir entry").path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                let source = std::fs::read_to_string(&path).expect("source readable");
                if source.contains("thread::scope") && !path.ends_with("stats/src/exec.rs") {
                    offenders.push(path.display().to_string());
                }
            }
        }
    }
    assert!(
        offenders.is_empty(),
        "thread::scope outside the executor module (uu_core::exec): {offenders:?}"
    );
}
