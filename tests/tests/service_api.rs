//! The transport-agnostic service layer, exercised **without any socket**:
//! a [`Service`] is a complete server once you hold one, and
//! `Service::dispatch` must answer exactly what a real connection would get.
//!
//! Also pins the layering by grep: `service.rs` must stay free of transport
//! types (`TcpStream`, `TcpListener`, framing buffers) — the whole point of
//! the redesign is that the service compiles without knowing any wire
//! exists.

use uu_query::catalog::Catalog;
use uu_query::csv::load_observations;
use uu_query::exec::CorrectionMethod;
use uu_query::schema::{ColumnType, Schema};
use uu_query::table::IntegratedTable;
use uu_server::protocol::{ErrorCode, QueryRequest, Request, Response};
use uu_server::{Service, SessionCtx};

const TOY_CSV: &str = "\
worker,company,employees,state
0,A,1000,CA
0,B,2000,CA
0,D,10000,WA
1,B,2000,CA
1,D,10000,WA
2,D,10000,WA
3,D,10000,WA
4,A,1000,CA
4,E,300,CA
";

fn toy_catalog() -> Catalog {
    let schema = Schema::new([
        ("company", ColumnType::Str),
        ("employees", ColumnType::Float),
        ("state", ColumnType::Str),
    ]);
    let mut table = IntegratedTable::new("companies", schema, "company").unwrap();
    load_observations(&mut table, TOY_CSV, "worker").unwrap();
    let mut catalog = Catalog::new();
    catalog.register(table).unwrap();
    catalog
}

fn service() -> Service {
    Service::new(toy_catalog(), 0)
}

fn expect_error(response: Response, code: ErrorCode) {
    match response {
        Response::Error(e) => assert_eq!(e.code, code, "{}", e.message),
        other => panic!("expected {code:?}, got {}", other.encode()),
    }
}

/// The layering pin: no socket or framing type may appear in the service
/// module. Both fronts (`server.rs` line-JSON, `pgwire.rs`) own their
/// transports; `service.rs` owns the meaning.
#[test]
fn service_module_is_free_of_transport_types() {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("crates/server/src/service.rs");
    let source = std::fs::read_to_string(&path).expect("service.rs readable");
    for forbidden in [
        "TcpStream",
        "TcpListener",
        "UdpSocket",
        "SocketAddr",
        "std::net",
        "read_line",
        "BufReader",
        "set_read_timeout",
    ] {
        assert!(
            !source.contains(forbidden),
            "service.rs must stay transport-agnostic but mentions {forbidden:?}"
        );
    }
}

#[test]
fn dispatch_answers_ping_stats_and_info_without_a_socket() {
    let service = service();
    let mut ctx = SessionCtx::new();
    assert!(matches!(
        service.dispatch(&mut ctx, Request::Ping),
        Response::Pong
    ));
    let Response::Info(info) = service.dispatch(&mut ctx, Request::ServerInfo) else {
        panic!("expected server_info");
    };
    assert_eq!(info.version, env!("CARGO_PKG_VERSION"));
    assert_eq!(info.active_sessions, 0);
    assert!(
        info.fronts.is_empty(),
        "no transport registered a front on an embedded service"
    );
    let Response::Stats(stats) = service.dispatch(&mut ctx, Request::Stats) else {
        panic!("expected stats");
    };
    assert_eq!(stats.tables, vec!["companies".to_string()]);
    assert!(stats.requests >= 2, "dispatch itself counts requests");
}

#[test]
fn dispatched_queries_match_direct_catalog_calls_bit_for_bit() {
    let service = service();
    let mut ctx = SessionCtx::new();
    let catalog = toy_catalog();
    for sql in [
        "SELECT SUM(employees) FROM companies",
        "SELECT AVG(employees) FROM companies",
        "SELECT SUM(employees) FROM companies WHERE employees < 5000",
    ] {
        let direct = catalog
            .execute_sql_cached(sql, CorrectionMethod::Bucket)
            .unwrap();
        let response = service.dispatch(
            &mut ctx,
            Request::Query(QueryRequest {
                sql: sql.to_string(),
                estimators: vec!["bucket".to_string()],
                cached: true,
                trace: false,
            }),
        );
        let Response::Query(reply) = response else {
            panic!("expected query reply for {sql}");
        };
        let got = reply.single().unwrap();
        assert_eq!(got.observed.to_bits(), direct.observed.to_bits(), "{sql}");
        assert_eq!(
            got.corrected.map(f64::to_bits),
            direct.corrected.map(f64::to_bits),
            "{sql}"
        );
        assert_eq!(got.method, direct.method, "{sql}");
    }
}

#[test]
fn named_sessions_pin_estimators_and_surface_counters() {
    let service = service();
    let mut ctx = SessionCtx::new();
    let sql = "SELECT SUM(employees) FROM companies";

    // Open, prepare, execute twice, check counters.
    let opened = service.dispatch(
        &mut ctx,
        Request::SessionOpen {
            name: "s1".into(),
            estimators: vec!["bucket".into(), "naive".into()],
        },
    );
    match opened {
        Response::SessionOpened { name, estimators } => {
            assert_eq!(name, "s1");
            assert_eq!(estimators, vec!["bucket", "naive"]);
        }
        other => panic!("{}", other.encode()),
    }
    let prepared = service.dispatch(
        &mut ctx,
        Request::Prepare {
            session: "s1".into(),
            name: "q".into(),
            sql: sql.into(),
        },
    );
    match prepared {
        Response::Prepared {
            universes,
            already_cached,
            ..
        } => {
            assert_eq!(universes, 1);
            assert!(!already_cached, "first prepare builds the selection");
        }
        other => panic!("{}", other.encode()),
    }
    let mut replies = Vec::new();
    for _ in 0..2 {
        let response = service.dispatch(
            &mut ctx,
            Request::ExecutePrepared {
                session: "s1".into(),
                name: "q".into(),
            },
        );
        let Response::Query(reply) = response else {
            panic!("expected query reply");
        };
        assert!(reply.cache_hit, "prepared executes reuse frozen snapshots");
        replies.push(reply);
    }
    assert_eq!(
        replies[0].single().unwrap().canonical(),
        replies[1].single().unwrap().canonical()
    );
    // The pinned session applies bucket as the primary correction and fans
    // out both estimators.
    let result = replies[0].single().unwrap();
    assert_eq!(result.method, "bucket");
    assert_eq!(result.estimates.len(), 2);

    let Response::Stats(stats) = service.dispatch(&mut ctx, Request::Stats) else {
        panic!("expected stats");
    };
    let s1 = stats.sessions.iter().find(|s| s.name == "s1").unwrap();
    assert_eq!(s1.estimators, vec!["bucket", "naive"]);
    assert_eq!(s1.prepared, 1);
    assert_eq!(s1.executes, 2);
    assert!(
        s1.frozen_hits >= 2,
        "both executes were pure frozen-snapshot hits (got {})",
        s1.frozen_hits
    );

    // Deallocate + close; the session disappears from stats.
    assert!(matches!(
        service.dispatch(
            &mut ctx,
            Request::Deallocate {
                session: "s1".into(),
                name: "q".into()
            }
        ),
        Response::Deallocated { .. }
    ));
    assert!(matches!(
        service.dispatch(&mut ctx, Request::SessionClose { name: "s1".into() }),
        Response::SessionClosed {
            prepared_dropped: 0,
            ..
        }
    ));
    let Response::Stats(stats) = service.dispatch(&mut ctx, Request::Stats) else {
        panic!("expected stats");
    };
    assert!(stats.sessions.is_empty());
}

#[test]
fn prepared_statements_refreeze_after_table_mutations() {
    let service = service();
    let mut ctx = SessionCtx::new();
    service.dispatch(
        &mut ctx,
        Request::SessionOpen {
            name: "s".into(),
            estimators: vec!["naive".into()],
        },
    );
    service.dispatch(
        &mut ctx,
        Request::Prepare {
            session: "s".into(),
            name: "count".into(),
            sql: "SELECT COUNT(*) FROM companies".into(),
        },
    );
    let execute = Request::ExecutePrepared {
        session: "s".into(),
        name: "count".into(),
    };
    let Response::Query(before) = service.dispatch(&mut ctx, execute.clone()) else {
        panic!("expected query reply");
    };
    assert_eq!(before.single().unwrap().observed, 4.0);

    // Mutate the table through the admin verb; the frozen selection is now
    // stale and must be re-captured — with the *new* answer.
    let load = Request::LoadCsv(uu_server::protocol::LoadCsvRequest {
        table: "companies".into(),
        columns: Vec::new(),
        entity_column: "company".into(),
        source_column: "worker".into(),
        csv: "worker,company,employees,state\n7,F,50,CA\n".into(),
        append: true,
    });
    assert!(matches!(
        service.dispatch(&mut ctx, load),
        Response::Loaded { entities: 5, .. }
    ));
    let Response::Query(after) = service.dispatch(&mut ctx, execute) else {
        panic!("expected query reply");
    };
    assert_eq!(
        after.single().unwrap().observed,
        5.0,
        "a stale frozen selection must never answer for a mutated table"
    );
}

#[test]
fn session_error_paths_answer_structured_codes() {
    let service = service();
    let mut ctx = SessionCtx::new();
    expect_error(
        service.dispatch(
            &mut ctx,
            Request::Prepare {
                session: "ghost".into(),
                name: "q".into(),
                sql: "SELECT COUNT(*) FROM companies".into(),
            },
        ),
        ErrorCode::UnknownSession,
    );
    expect_error(
        service.dispatch(
            &mut ctx,
            Request::SessionClose {
                name: "ghost".into(),
            },
        ),
        ErrorCode::UnknownSession,
    );
    service.dispatch(
        &mut ctx,
        Request::SessionOpen {
            name: "s".into(),
            estimators: vec!["bucket".into()],
        },
    );
    expect_error(
        service.dispatch(
            &mut ctx,
            Request::SessionOpen {
                name: "s".into(),
                estimators: Vec::new(),
            },
        ),
        ErrorCode::DuplicateSession,
    );
    expect_error(
        service.dispatch(
            &mut ctx,
            Request::SessionOpen {
                name: "t".into(),
                estimators: vec!["chao2000".into()],
            },
        ),
        ErrorCode::UnknownEstimator,
    );
    expect_error(
        service.dispatch(
            &mut ctx,
            Request::ExecutePrepared {
                session: "s".into(),
                name: "nope".into(),
            },
        ),
        ErrorCode::UnknownPrepared,
    );
    expect_error(
        service.dispatch(
            &mut ctx,
            Request::Prepare {
                session: "s".into(),
                name: "bad".into(),
                sql: "SELEKT".into(),
            },
        ),
        ErrorCode::Parse,
    );
    expect_error(
        service.dispatch(
            &mut ctx,
            Request::Prepare {
                session: "s".into(),
                name: "bad".into(),
                sql: "SELECT COUNT(*) FROM missing".into(),
            },
        ),
        ErrorCode::UnknownTable,
    );
    service.dispatch(
        &mut ctx,
        Request::Prepare {
            session: "s".into(),
            name: "q".into(),
            sql: "SELECT COUNT(*) FROM companies".into(),
        },
    );
    expect_error(
        service.dispatch(
            &mut ctx,
            Request::Prepare {
                session: "s".into(),
                name: "q".into(),
                sql: "SELECT COUNT(*) FROM companies".into(),
            },
        ),
        ErrorCode::DuplicatePrepared,
    );
    expect_error(
        service.dispatch(
            &mut ctx,
            Request::Deallocate {
                session: "s".into(),
                name: "nope".into(),
            },
        ),
        ErrorCode::UnknownPrepared,
    );
    // Every error above was counted, and dispatch stays usable.
    let Response::Stats(stats) = service.dispatch(&mut ctx, Request::Stats) else {
        panic!("expected stats");
    };
    assert!(stats.errors >= 8, "errors counted (got {})", stats.errors);
    assert!(matches!(
        service.dispatch(&mut ctx, Request::Ping),
        Response::Pong
    ));
}

/// Regression: a `Float(NaN)` group key must pair with its own universe in
/// the uncached path — derived `PartialEq` (NaN != NaN) used to panic the
/// pairing.
#[test]
fn nan_group_keys_do_not_panic_the_uncached_path() {
    let schema = Schema::new([
        ("k", ColumnType::Str),
        ("v", ColumnType::Float),
        ("f", ColumnType::Float),
    ]);
    let mut table = IntegratedTable::new("t", schema, "k").unwrap();
    let csv = "worker,k,v,f\n0,a,1,NaN\n1,a,1,NaN\n0,b,2,5\n1,b,2,5\n";
    load_observations(&mut table, csv, "worker").unwrap();
    let mut catalog = Catalog::new();
    catalog.register(table).unwrap();
    let service = Service::new(catalog, 0);
    let mut ctx = SessionCtx::new();
    for cached in [false, true] {
        let response = service.dispatch(
            &mut ctx,
            Request::Query(QueryRequest {
                sql: "SELECT SUM(v) FROM t GROUP BY f".into(),
                estimators: vec!["naive".into()],
                cached,
                trace: false,
            }),
        );
        let Response::Query(reply) = response else {
            panic!("expected query reply (cached={cached})");
        };
        assert_eq!(reply.groups.len(), 2, "cached={cached}");
        assert!(reply.groups.iter().all(|g| g.result.estimates.len() == 1));
    }
}

#[test]
fn session_and_prepared_registries_are_bounded() {
    let service = service();
    let mut ctx = SessionCtx::new();
    // Fill the session registry (empty estimator lists keep it cheap).
    for i in 0..uu_server::service::MAX_SESSIONS {
        let response = service.dispatch(
            &mut ctx,
            Request::SessionOpen {
                name: format!("s{i}"),
                estimators: Vec::new(),
            },
        );
        assert!(matches!(response, Response::SessionOpened { .. }), "{i}");
    }
    expect_error(
        service.dispatch(
            &mut ctx,
            Request::SessionOpen {
                name: "one-too-many".into(),
                estimators: Vec::new(),
            },
        ),
        ErrorCode::ResourceLimit,
    );
    // Closing one frees a slot.
    service.dispatch(&mut ctx, Request::SessionClose { name: "s0".into() });
    assert!(matches!(
        service.dispatch(
            &mut ctx,
            Request::SessionOpen {
                name: "one-too-many".into(),
                estimators: Vec::new(),
            },
        ),
        Response::SessionOpened { .. }
    ));

    // Fill one session's prepared registry (same SQL: one cache entry, the
    // rest are thaws).
    for i in 0..uu_server::service::MAX_PREPARED_PER_SESSION {
        let response = service.dispatch(
            &mut ctx,
            Request::Prepare {
                session: "s1".into(),
                name: format!("q{i}"),
                sql: "SELECT COUNT(*) FROM companies".into(),
            },
        );
        assert!(matches!(response, Response::Prepared { .. }), "{i}");
    }
    expect_error(
        service.dispatch(
            &mut ctx,
            Request::Prepare {
                session: "s1".into(),
                name: "one-too-many".into(),
                sql: "SELECT COUNT(*) FROM companies".into(),
            },
        ),
        ErrorCode::ResourceLimit,
    );
    // Deallocating frees a slot.
    service.dispatch(
        &mut ctx,
        Request::Deallocate {
            session: "s1".into(),
            name: "q0".into(),
        },
    );
    assert!(matches!(
        service.dispatch(
            &mut ctx,
            Request::Prepare {
                session: "s1".into(),
                name: "one-too-many".into(),
                sql: "SELECT COUNT(*) FROM companies".into(),
            },
        ),
        Response::Prepared { .. }
    ));
}

#[test]
fn sessions_are_shared_across_client_contexts() {
    let service = service();
    let mut analyst = SessionCtx::new();
    let mut reader = SessionCtx::new();
    service.dispatch(
        &mut analyst,
        Request::SessionOpen {
            name: "shared".into(),
            estimators: vec!["bucket".into()],
        },
    );
    service.dispatch(
        &mut analyst,
        Request::Prepare {
            session: "shared".into(),
            name: "q".into(),
            sql: "SELECT SUM(employees) FROM companies".into(),
        },
    );
    // A *different* connection context executes the statement: named
    // sessions are server-side state, not connection state.
    let response = service.dispatch(
        &mut reader,
        Request::ExecutePrepared {
            session: "shared".into(),
            name: "q".into(),
        },
    );
    let Response::Query(reply) = response else {
        panic!("expected query reply");
    };
    assert_eq!(reply.single().unwrap().observed, 13_300.0);
}
