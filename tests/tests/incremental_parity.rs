//! Property tests pinning the incremental-append tentpole: a table grown
//! through [`IntegratedTable::append_batch`] — with its projection extended
//! in place, its sort permutations absorbed by merge and its cached profile
//! snapshots re-frozen — must be **bit-for-bit** indistinguishable from a
//! table rebuilt from scratch with the same observations inserted one by
//! one, and a catalog's cached answers after an append must equal a cold
//! execution over the rebuilt table.
//!
//! Corners exercised: NaN/±inf/-0.0 in predicate and group columns, NULL
//! cells, duplicate entity keys across the base/delta boundary (touched
//! multiplicities), dictionary-growing strings arriving only in the delta,
//! interleaved append → query → append sequences, the per-table
//! `set_incremental(false)` drop-and-rebuild oracle, and both server fronts
//! (line-JSON and pgwire) answering identically after an `append_stream`.
//!
//! The whole suite must pass with `UU_INCREMENTAL=0` as well — parity is
//! the invariant, the knob only changes which path provides it.

use proptest::prelude::*;
use uu_core::sample::SampleView;
use uu_query::catalog::Catalog;
use uu_query::exec::CorrectionMethod;
use uu_query::predicate::{CmpOp, Predicate};
use uu_query::query::AggregateQuery;
use uu_query::schema::{ColumnType, Schema};
use uu_query::table::IntegratedTable;
use uu_query::value::Value;
use uu_server::client::Client;
use uu_server::pgwire::PgClient;
use uu_server::protocol::{LoadCsvRequest, QueryReply, Request, Response};
use uu_server::server::{spawn, ServerConfig};

/// One generated observation row as selector integers (the columnar-parity
/// suite's style: cheap to shrink, easy to steer into corners).
type RowSel = ((u64, u32, u64, i32), (u64, i32, u64));

/// A float with the interesting corners: specials, signed zero, heavy
/// duplication and plain fractions.
fn float_from(selector: u64, mantissa: i32) -> f64 {
    match selector % 8 {
        0 => f64::NAN,
        1 => f64::INFINITY,
        2 => f64::NEG_INFINITY,
        3 => -0.0,
        4 => 0.0,
        5 => (mantissa % 7) as f64, // duplicates
        6 => mantissa as f64 * 0.25,
        _ => mantissa as f64 * 1e12,
    }
}

/// A cell for the predicate column (`Float` typed, also holding `Int` cells
/// and NULLs).
fn pred_cell(selector: u64, mantissa: i32) -> Value {
    match selector % 11 {
        8 => Value::Null,
        9 => Value::Int(mantissa as i64),
        10 => Value::Int((mantissa as i64) << 40),
        _ => Value::Float(float_from(selector, mantissa)),
    }
}

/// A cell for the aggregation column: finite or NULL only (observed items
/// require finite values).
fn attr_cell(selector: u64, mantissa: i32) -> Value {
    match selector % 6 {
        0 => Value::Null,
        1 => Value::Float(-0.0),
        2 => Value::Float((mantissa % 5) as f64),
        3 => Value::Int(mantissa as i64),
        _ => Value::Float(mantissa as f64 * 0.5),
    }
}

const STATES: [&str; 4] = ["CA", "WA", "NY", ""];

fn schema() -> Schema {
    Schema::new([
        ("company", ColumnType::Str),
        ("pred", ColumnType::Float),
        ("attr", ColumnType::Float),
        ("state", ColumnType::Str),
    ])
}

/// One observation record from a row selector. Delta rows draw from a wider
/// string pool (`x…` states), so appends grow the dictionary.
fn record(row: &RowSel, delta: bool) -> (u32, Vec<Value>) {
    let &((entity, source, pred_sel, pred_m), (attr_sel, attr_m, str_sel)) = row;
    let state = if delta && str_sel % 3 == 0 {
        format!("x{}", str_sel % 11) // dictionary-growing: unseen at build
    } else {
        STATES[str_sel as usize % STATES.len()].to_string()
    };
    (
        source % 5,
        vec![
            Value::from(format!("e{}", entity % 24)),
            pred_cell(pred_sel, pred_m),
            attr_cell(attr_sel, attr_m),
            Value::Str(state),
        ],
    )
}

/// The from-scratch oracle: every observation inserted one by one.
fn rebuilt(base: &[RowSel], delta: &[RowSel]) -> IntegratedTable {
    let mut table = IntegratedTable::new("t", schema(), "company").unwrap();
    for row in base {
        let (source, values) = record(row, false);
        table.insert_observation(source, values).unwrap();
    }
    for row in delta {
        let (source, values) = record(row, true);
        table.insert_observation(source, values).unwrap();
    }
    table
}

const OPS: [CmpOp; 6] = [
    CmpOp::Eq,
    CmpOp::Ne,
    CmpOp::Lt,
    CmpOp::Le,
    CmpOp::Gt,
    CmpOp::Ge,
];

/// A predicate over the specials-bearing numeric column and the string
/// column, with combinators.
fn predicate_from(sel: &[u64], mantissa: i32) -> Predicate {
    let literal = match sel[1] % 10 {
        8 => Value::Null,
        9 => Value::Float(f64::NAN),
        _ => Value::Float(float_from(sel[1], mantissa)),
    };
    let leaf_num = Predicate::cmp("pred", OPS[sel[0] as usize % OPS.len()], literal);
    let leaf_str = Predicate::cmp(
        "state",
        OPS[sel[2] as usize % OPS.len()],
        Value::Str(STATES[sel[3] as usize % STATES.len()].into()),
    );
    match sel[4] % 4 {
        0 => leaf_num,
        1 => leaf_num.and(leaf_str),
        2 => leaf_num.or(leaf_str),
        _ => leaf_num.and(leaf_str.not()),
    }
}

/// Bit-for-bit equality of two views: identical value bits, multiplicity
/// and per-source lineage, item by item.
fn assert_views_equal(
    incremental: &SampleView,
    oracle: &SampleView,
    context: &str,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(
        incremental.items().len(),
        oracle.items().len(),
        "len: {}",
        context
    );
    for (a, b) in incremental.items().iter().zip(oracle.items()) {
        prop_assert_eq!(
            a.value.to_bits(),
            b.value.to_bits(),
            "value bits: {}",
            context
        );
        prop_assert_eq!(a.multiplicity, b.multiplicity, "multiplicity: {}", context);
        prop_assert_eq!(&a.source_counts, &b.source_counts, "lineage: {}", context);
    }
    Ok(())
}

/// Appends `delta` to `table` in `chunks` batches through the incremental
/// path, after warming the projection and sort permutations so there is
/// warm state to maintain.
fn append_in_chunks(table: &mut IntegratedTable, delta: &[RowSel], chunks: usize) {
    let chunks = chunks.clamp(1, 3);
    let per = delta.len().div_ceil(chunks).max(1);
    for chunk in delta.chunks(per) {
        let batch = chunk.iter().map(|row| record(row, true)).collect();
        table.append_batch(batch).unwrap();
    }
}

/// Full-surface comparison of the incrementally-grown table against the
/// from-scratch oracle: entities, ungrouped and grouped selections, and the
/// value-sort permutations behind them.
fn assert_tables_equal(
    grown: &IntegratedTable,
    oracle: &IntegratedTable,
    predicate: &Predicate,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(grown.len(), oracle.len(), "entity count");
    prop_assert_eq!(grown.total_observations(), oracle.total_observations());
    for (a, b) in grown.entities().zip(oracle.entities()) {
        prop_assert_eq!(a.multiplicity(), b.multiplicity(), "entity multiplicity");
    }
    for attr in [Some("attr"), None] {
        let (view, sorted) = grown.sample_view_with_sorted(attr, predicate).unwrap();
        let (ref_view, ref_sorted) = oracle.sample_view_with_sorted(attr, predicate).unwrap();
        assert_views_equal(&view, &ref_view, &format!("attr={attr:?}"))?;
        prop_assert_eq!(
            &sorted,
            &ref_sorted,
            "merged sort permutation must equal the from-scratch argsort (attr={:?})",
            attr
        );
    }
    for group_column in ["pred", "state"] {
        let grouped = grown
            .grouped_sample_views_with_sorted(Some("attr"), predicate, group_column)
            .unwrap();
        let reference = oracle
            .grouped_sample_views_with_sorted(Some("attr"), predicate, group_column)
            .unwrap();
        prop_assert_eq!(
            grouped.len(),
            reference.len(),
            "group count: {}",
            group_column
        );
        for ((value, view, sorted), (ref_value, ref_view, ref_sorted)) in
            grouped.iter().zip(&reference)
        {
            prop_assert_eq!(
                value.entity_key(),
                ref_value.entity_key(),
                "group key and order: {}",
                group_column
            );
            assert_views_equal(
                view,
                ref_view,
                &format!("group {value:?} of {group_column}"),
            )?;
            prop_assert_eq!(sorted, ref_sorted, "group sort perm: {}", group_column);
        }
    }
    Ok(())
}

/// A small query mix over the toy schema; `Debug` on the result rows is a
/// shortest-roundtrip rendering of every `f64`, so comparing the strings
/// pins the answers bit-for-bit (including `-0.0` vs `0.0`).
fn query_from(sel: u64, predicate: Predicate) -> AggregateQuery {
    let builder = match sel % 4 {
        0 => AggregateQuery::sum("attr"),
        1 => AggregateQuery::count_star(),
        2 => AggregateQuery::avg("attr"),
        _ => AggregateQuery::max("attr"),
    };
    let builder = builder.filter(predicate);
    match sel % 3 {
        0 => builder.from("t"),
        1 => builder.group_by("state").from("t"),
        _ => builder.group_by("pred").from("t"),
    }
}

/// Executes `query` through a catalog's profile cache, the way the server
/// does (fetch once, compute from the cached selection).
fn cached_rows(catalog: &Catalog, query: &AggregateQuery) -> String {
    let (snapshots, _) = catalog.selection_query(query).unwrap();
    let rows = uu_query::exec::results_from_selection(query, &snapshots, CorrectionMethod::Bucket);
    format!("{rows:?}")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Tentpole invariant at the table layer: append-then-read equals
    /// rebuild-then-read across every read surface, with warm state
    /// (projection, sort permutations) maintained through the append.
    #[test]
    fn append_matches_from_scratch_rebuild(
        base in proptest::collection::vec(
            ((0u64..1000, 0u32..5, 0u64..1_000_000, -40i32..40),
             (0u64..1_000_000, -40i32..40, 0u64..1_000_000)),
            0..40,
        ),
        delta in proptest::collection::vec(
            ((0u64..1000, 0u32..5, 0u64..1_000_000, -40i32..40),
             (0u64..1_000_000, -40i32..40, 0u64..1_000_000)),
            0..40,
        ),
        psel in proptest::collection::vec(0u64..1_000_000, 5),
        mantissa in -40i32..40,
        chunks in 1usize..4,
    ) {
        let predicate = predicate_from(&psel, mantissa);
        let oracle = rebuilt(&base, &delta);

        // Incremental path: build, warm every read surface, append.
        let mut grown = rebuilt(&base, &[]);
        for attr in [Some("attr"), None] {
            grown.sample_view_with_sorted(attr, &predicate).unwrap();
        }
        for group_column in ["pred", "state"] {
            grown
                .grouped_sample_views_with_sorted(Some("attr"), &predicate, group_column)
                .unwrap();
        }
        append_in_chunks(&mut grown, &delta, chunks);
        assert_tables_equal(&grown, &oracle, &predicate)?;

        // Drop-and-rebuild oracle path: the per-table flag forces the
        // fallback, which must answer identically.
        let mut fallback = rebuilt(&base, &[]);
        fallback.set_incremental(false);
        fallback.sample_view_with_sorted(Some("attr"), &predicate).unwrap();
        append_in_chunks(&mut fallback, &delta, chunks);
        prop_assert!(!fallback.incremental_enabled());
        assert_tables_equal(&fallback, &oracle, &predicate)?;
    }

    /// Tentpole invariant at the catalog layer: interleaved
    /// append → query → append sequences served from re-frozen cache
    /// entries answer bit-for-bit what a cold catalog over the rebuilt
    /// table answers — corrections, diagnostics and recommendations
    /// included.
    #[test]
    fn interleaved_appends_keep_cached_answers_exact(
        base in proptest::collection::vec(
            ((0u64..1000, 0u32..5, 0u64..1_000_000, -40i32..40),
             (0u64..1_000_000, -40i32..40, 0u64..1_000_000)),
            1..30,
        ),
        delta in proptest::collection::vec(
            ((0u64..1000, 0u32..5, 0u64..1_000_000, -40i32..40),
             (0u64..1_000_000, -40i32..40, 0u64..1_000_000)),
            1..30,
        ),
        psel in proptest::collection::vec(0u64..1_000_000, 5),
        qsel in 0u64..1_000_000,
        mantissa in -40i32..40,
    ) {
        let query = query_from(qsel, predicate_from(&psel, mantissa));
        let mut catalog = Catalog::new();
        catalog.register(rebuilt(&base, &[])).unwrap();

        // Cold query populates the cache; every appended prefix must then
        // answer (through the re-frozen or rebuilt entry) exactly what a
        // fresh catalog over the same prefix answers cold.
        let _ = cached_rows(&catalog, &query);
        let split = delta.len() / 2;
        for (lo, hi) in [(0, split), (split, delta.len())] {
            let batch: Vec<_> = delta[lo..hi].iter().map(|row| record(row, true)).collect();
            catalog.append_observations("t", batch).unwrap();
            let served = cached_rows(&catalog, &query);

            let mut fresh = Catalog::new();
            fresh.register(rebuilt(&base, &delta[..hi])).unwrap();
            let expected = cached_rows(&fresh, &query);
            prop_assert_eq!(&served, &expected, "after appending rows ..{}", hi);
        }
    }
}

/// Appending through a catalog with `UU_INCREMENTAL` honored off at the
/// table level counts fallbacks, never refreezes — and still answers
/// exactly.
#[test]
fn per_table_flag_forces_the_fallback_path_with_identical_answers() {
    let base: Vec<RowSel> = (0..12)
        .map(|i| {
            (
                (i, i as u32, i * 37, i as i32 - 6),
                (i * 61, i as i32, i * 13),
            )
        })
        .collect();
    let delta: Vec<RowSel> = (0..8)
        .map(|i| {
            (
                (i * 3, i as u32, i * 91, i as i32),
                (i * 17, 5 - i as i32, i * 7),
            )
        })
        .collect();
    let query = AggregateQuery::sum("attr").from("t");

    let mut catalog = Catalog::new();
    let mut table = rebuilt(&base, &[]);
    table.set_incremental(false);
    catalog.register(table).unwrap();
    let _ = cached_rows(&catalog, &query);
    let batch = delta.iter().map(|row| record(row, true)).collect();
    let (applied, refrozen) = catalog.append_observations("t", batch).unwrap();
    assert!(!applied.incremental, "flag must force the fallback");
    assert_eq!(refrozen, 0, "fallback path never refreezes");
    let stats = catalog.incremental_stats();
    assert_eq!(stats.snapshots_refrozen, 0);
    assert!(stats.fallback_rebuilds >= 1, "fallback was counted");

    let mut fresh = Catalog::new();
    fresh.register(rebuilt(&base, &delta)).unwrap();
    assert_eq!(cached_rows(&catalog, &query), cached_rows(&fresh, &query));
}

// ---------------------------------------------------------------------------
// Both server fronts
// ---------------------------------------------------------------------------

const BASE_CSV: &str = "\
worker,company,employees,state
0,A,1000,CA
0,B,2000,CA
0,D,10000,WA
1,B,2000,CA
1,D,10000,WA
2,D,10000,WA
3,D,10000,WA
4,A,1000,CA
4,E,300,CA
";

/// The delta re-observes existing entities (A, D), adds a new one (F) and
/// grows the state dictionary (TX was never seen at build time).
const DELTA_CSV: &str = "\
worker,company,employees,state
5,A,1000,CA
5,F,500,TX
6,D,10000,WA
6,F,500,TX
";

fn load_csv(addr: std::net::SocketAddr, csv: &str, append: bool) {
    let mut client = Client::connect(addr).unwrap();
    let response = client
        .request(&Request::LoadCsv(LoadCsvRequest {
            table: "companies".into(),
            columns: vec![
                ("company".into(), "str".into()),
                ("employees".into(), "float".into()),
                ("state".into(), "str".into()),
            ],
            entity_column: "company".into(),
            source_column: "worker".into(),
            csv: csv.into(),
            append,
        }))
        .unwrap();
    assert!(
        matches!(response, Response::Loaded { .. }),
        "{}",
        response.encode()
    );
}

/// Canonical text of a JSON-front reply: group keys plus the bit-exact
/// single-line rendering of every result.
fn canonical_groups(reply: &QueryReply) -> Vec<(String, String)> {
    reply
        .groups
        .iter()
        .map(|g| (format!("{:?}", g.key), g.result.canonical()))
        .collect()
}

const FRONT_SQLS: [&str; 3] = [
    "SELECT SUM(employees) FROM companies",
    "SELECT SUM(employees) FROM companies GROUP BY state",
    "SELECT AVG(employees) FROM companies WHERE employees < 5000",
];

/// Interleaved query → append → query against a live server must answer —
/// on **both** fronts — exactly what a server loaded with the combined
/// document from scratch answers, and the post-append queries must be
/// served from re-frozen cache entries when incremental mode is on.
#[test]
fn both_fronts_answer_identically_after_append_stream() {
    let config = ServerConfig {
        pgwire_addr: Some("127.0.0.1:0".to_string()),
        ..ServerConfig::default()
    };
    let grown = spawn(config).unwrap();
    load_csv(grown.addr(), BASE_CSV, false);

    // Warm both fronts before the append: the JSON queries populate the
    // profile cache, so the append has selections to re-freeze.
    let mut json = Client::connect(grown.addr()).unwrap();
    let mut pg = PgClient::connect(grown.pgwire_addr().unwrap()).unwrap();
    for sql in FRONT_SQLS {
        json.query(sql, &["bucket"], true).unwrap();
        pg.simple_query(sql).unwrap();
    }

    let outcome = json
        .append_stream("companies", "worker", DELTA_CSV)
        .unwrap();
    assert_eq!(outcome.observations, 4);
    assert_eq!(outcome.entities, 5, "A/B/D/E plus the new F");
    if outcome.incremental {
        assert!(
            outcome.refrozen >= 1,
            "warm selections must re-freeze, not evict"
        );
    }

    // The from-scratch oracle: a second server loaded with base + delta in
    // one document.
    let config = ServerConfig {
        pgwire_addr: Some("127.0.0.1:0".to_string()),
        ..ServerConfig::default()
    };
    let fresh = spawn(config).unwrap();
    load_csv(
        fresh.addr(),
        &format!("{BASE_CSV}5,A,1000,CA\n5,F,500,TX\n6,D,10000,WA\n6,F,500,TX\n"),
        false,
    );
    let mut fresh_json = Client::connect(fresh.addr()).unwrap();
    let mut fresh_pg = PgClient::connect(fresh.pgwire_addr().unwrap()).unwrap();

    for sql in FRONT_SQLS {
        let served = json.query(sql, &["bucket"], true).unwrap();
        let expected = fresh_json.query(sql, &["bucket"], true).unwrap();
        assert_eq!(
            canonical_groups(&served),
            canonical_groups(&expected),
            "json front: {sql}"
        );
        // Ungrouped selections re-freeze even with touched rows; the
        // grouped one saw its CA/WA members re-observed, which by design
        // falls back to a rebuild — so only the ungrouped queries are
        // guaranteed a warm hit.
        if outcome.incremental && !sql.contains("GROUP BY") {
            assert!(
                served.cache_hit,
                "re-frozen entry must serve the hit: {sql}"
            );
        }

        let pg_served = pg.simple_query(sql).unwrap();
        let pg_expected = fresh_pg.simple_query(sql).unwrap();
        assert_eq!(
            pg_served.columns, pg_expected.columns,
            "pgwire front: {sql}"
        );
        assert_eq!(pg_served.rows, pg_expected.rows, "pgwire front: {sql}");
    }

    // The incremental counters travelled the wire.
    let stats = json.stats().unwrap();
    assert_eq!(stats.incremental.delta_batches, 1);
    assert_eq!(stats.incremental.rows_appended, 4);
    if outcome.incremental {
        assert_eq!(stats.incremental.snapshots_refrozen, outcome.refrozen);
    } else {
        assert!(stats.incremental.fallback_rebuilds >= 1);
    }
    let fresh_stats = fresh_json.stats().unwrap();
    assert_eq!(fresh_stats.incremental.delta_batches, 0);

    grown.shutdown();
    fresh.shutdown();
}

/// A second `load_csv` with `append: true` rides the same delta path as
/// `append_stream` — counters advance and warm entries survive.
#[test]
fn appending_load_csv_routes_through_the_delta_path() {
    let handle = spawn(ServerConfig::default()).unwrap();
    load_csv(handle.addr(), BASE_CSV, false);
    let mut client = Client::connect(handle.addr()).unwrap();
    let before = client
        .query("SELECT SUM(employees) FROM companies", &["bucket"], true)
        .unwrap();
    assert!(!before.cache_hit);

    load_csv(handle.addr(), DELTA_CSV, true);
    let stats = client.stats().unwrap();
    assert_eq!(
        stats.incremental.delta_batches, 1,
        "append load counted as a delta batch"
    );
    assert_eq!(stats.incremental.rows_appended, 4);

    let after = client
        .query("SELECT SUM(employees) FROM companies", &["bucket"], true)
        .unwrap();
    let observed = after.single().expect("ungrouped").observed;
    assert_eq!(observed, 13_800.0, "13300 + the new entity F (500)");
    if stats.incremental.snapshots_refrozen >= 1 {
        assert!(
            after.cache_hit,
            "re-frozen entry serves the post-append query"
        );
    }
    handle.shutdown();
}
