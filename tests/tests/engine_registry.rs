//! Registry parity: the engine is the single estimator-construction site, so
//! an engine-built estimator must be indistinguishable from a directly
//! constructed one — same names, same `DeltaEstimate`s on seeded samples —
//! and the query executor's `Auto` method must agree with §6.5's
//! `recommend`.

use uu_core::bucket::DynamicBucketEstimator;
use uu_core::engine::{EstimationSession, EstimatorKind};
use uu_core::estimate::{DeltaEstimate, SumEstimator};
use uu_core::frequency::FrequencyEstimator;
use uu_core::montecarlo::{MonteCarloConfig, MonteCarloEstimator};
use uu_core::naive::NaiveEstimator;
use uu_core::policy::PolicyEstimator;
use uu_core::profile::ViewProfile;
use uu_core::recommend::{recommend, Recommendation};
use uu_core::sample::{replay_checkpoints, SampleView};
use uu_datagen::realworld;
use uu_datagen::scenario;
use uu_integration_tests::{toy_after, toy_before};
use uu_query::exec::{execute_sql, CorrectionMethod};
use uu_query::schema::{ColumnType, Schema};
use uu_query::table::IntegratedTable;
use uu_query::value::Value;

/// Seeded views covering the regimes that exercise every estimator: the toy
/// example (no lineage), a healthy synthetic grid cell, a streaker workload,
/// and a real-data stand-in.
fn parity_views() -> Vec<SampleView> {
    let mut views = vec![toy_before(), toy_after()];
    let s = scenario::figure6(10, 1.0, 1.0, 99);
    views.extend(
        replay_checkpoints(s.stream(), &[150, 400])
            .into_iter()
            .map(|(_, v)| v),
    );
    let gdp = realworld::us_gdp(7);
    views.extend(
        replay_checkpoints(gdp.stream(), &[60])
            .into_iter()
            .map(|(_, v)| v),
    );
    views
}

/// Directly constructed counterpart of each registry kind.
fn direct(kind: EstimatorKind) -> Box<dyn SumEstimator> {
    match kind {
        EstimatorKind::Naive => Box::new(NaiveEstimator::default()),
        EstimatorKind::Frequency => Box::new(FrequencyEstimator::default()),
        EstimatorKind::Bucket => Box::new(DynamicBucketEstimator::default()),
        EstimatorKind::MonteCarlo(cfg) => Box::new(MonteCarloEstimator::new(cfg)),
        EstimatorKind::Policy => Box::new(PolicyEstimator::default()),
    }
}

#[test]
fn engine_built_estimators_match_direct_construction() {
    let views = parity_views();
    let kinds = {
        let mut ks = EstimatorKind::standard(MonteCarloConfig::fast());
        ks.push(EstimatorKind::Policy);
        ks
    };
    for kind in kinds {
        let built = kind.build();
        let by_hand = direct(kind);
        assert_eq!(built.name(), by_hand.name(), "{kind:?}");
        for (i, view) in views.iter().enumerate() {
            let a: DeltaEstimate = built.estimate_delta(view);
            let b: DeltaEstimate = by_hand.estimate_delta(view);
            assert_eq!(a, b, "{kind:?} diverges on view {i}");
        }
    }
}

#[test]
fn session_reports_the_same_estimates_as_standalone_builds() {
    let views = parity_views();
    let session = EstimationSession::standard(MonteCarloConfig::fast());
    for view in &views {
        for result in session.run(view) {
            let standalone = result.kind.build().estimate_delta(view);
            assert_eq!(result.delta, standalone, "{:?}", result.kind);
            assert_eq!(
                result.corrected,
                standalone.delta.map(|d| view.observed_sum() + d)
            );
        }
    }
}

/// Every registry kind, with both Monte-Carlo configurations that appear in
/// practice (fast for tests, default for the policy's internal routing).
fn all_parity_kinds() -> Vec<EstimatorKind> {
    let mut kinds = EstimatorKind::standard(MonteCarloConfig::fast());
    kinds.push(EstimatorKind::MonteCarlo(MonteCarloConfig::default()));
    kinds.push(EstimatorKind::Policy);
    kinds
}

/// The tentpole guarantee: for every `EstimatorKind`, the profile path —
/// shared, memoized statistics — produces bit-for-bit the same Δ and SUM as
/// the direct path, whether the profile is cold (per estimator) or warm
/// (shared by all of them).
#[test]
fn profiled_estimates_match_direct_for_every_kind() {
    let views = parity_views();
    for (i, view) in views.iter().enumerate() {
        // Warm profile: shared across all kinds, statistics memoized by
        // whichever estimator touches them first.
        let shared = ViewProfile::new(view);
        for kind in all_parity_kinds() {
            let est = kind.build();
            let direct: DeltaEstimate = est.estimate_delta(view);
            let cold_profile = ViewProfile::new(view);
            assert_eq!(
                est.estimate_delta_profiled(&cold_profile),
                direct,
                "{kind:?} cold-profile divergence on view {i}"
            );
            assert_eq!(
                est.estimate_delta_profiled(&shared),
                direct,
                "{kind:?} warm-profile divergence on view {i}"
            );
            assert_eq!(
                est.estimate_sum_profiled(&shared),
                est.estimate_sum(view),
                "{kind:?} SUM divergence on view {i}"
            );
        }
    }
}

/// COUNT parity: the profiled count dispatch equals the direct dispatch for
/// every kind on every seeded view.
#[test]
fn profiled_counts_match_direct_for_every_kind() {
    let views = parity_views();
    for (i, view) in views.iter().enumerate() {
        let shared = ViewProfile::new(view);
        for kind in all_parity_kinds() {
            assert_eq!(
                kind.estimate_count_profiled(&shared),
                kind.estimate_count(view),
                "{kind:?} COUNT divergence on view {i}"
            );
        }
    }
}

/// A session over the full registry shares one statistics pass per view: one
/// sort, one bucket split, and each species estimator at most once.
#[test]
fn session_shares_one_statistics_pass_per_view() {
    for (i, view) in parity_views().iter().enumerate() {
        let profile = ViewProfile::new(view);
        let results = EstimationSession::new(all_parity_kinds()).run_profiled(&profile);
        assert_eq!(results.len(), all_parity_kinds().len());
        let m = profile.metrics();
        assert!(m.sort_builds <= 1, "view {i}: {} sorts", m.sort_builds);
        assert!(m.bucket_builds <= 1, "view {i}: {} splits", m.bucket_builds);
        assert!(
            m.species_computations <= 1,
            "view {i}: {} species passes (only Chao92 is needed)",
            m.species_computations
        );
        assert!(
            m.reads > m.total_builds(),
            "view {i}: sharing not exercised"
        );
    }
}

#[test]
fn by_name_round_trips_every_registry_entry() {
    for kind in EstimatorKind::all() {
        assert_eq!(EstimatorKind::by_name(kind.name()), Ok(kind));
    }
    assert!(EstimatorKind::by_name("no-such-estimator").is_err());
}

fn table_from_stream(
    stream: impl Iterator<Item = (u64, f64, u32)>,
    upto: usize,
) -> IntegratedTable {
    let schema = Schema::new([("k", ColumnType::Str), ("v", ColumnType::Float)]);
    let mut t = IntegratedTable::new("t", schema, "k").unwrap();
    for (item, value, source) in stream.take(upto) {
        t.insert_observation(
            source,
            vec![Value::from(format!("e{item}")), Value::from(value)],
        )
        .unwrap();
    }
    t
}

/// `CorrectionMethod::Auto` must land on exactly the estimator `recommend`
/// names, across all three recommendation outcomes.
#[test]
fn auto_method_agrees_with_recommend() {
    // Healthy grid cell → Bucket; streaker → MonteCarlo; the all-singleton
    // table below → CollectMoreData.
    let healthy = table_from_stream(scenario::figure6(10, 1.0, 1.0, 5).stream(), 400);
    let streaker = table_from_stream(realworld::us_gdp(7).stream(), 60);
    let sparse = {
        let schema = Schema::new([("k", ColumnType::Str), ("v", ColumnType::Float)]);
        let mut t = IntegratedTable::new("t", schema, "k").unwrap();
        for i in 0..12u32 {
            t.insert_observation(i % 5, vec![Value::from(format!("e{i}")), Value::from(1.0)])
                .unwrap();
        }
        t
    };

    for table in [&healthy, &streaker, &sparse] {
        let r = execute_sql(table, "SELECT SUM(v) FROM t", CorrectionMethod::Auto).unwrap();
        match r.recommendation {
            Recommendation::Bucket => assert_eq!(r.method, "bucket"),
            Recommendation::MonteCarlo => assert_eq!(r.method, "monte-carlo"),
            Recommendation::CollectMoreData => {
                assert_eq!(r.method, "withheld(coverage<40%)");
                assert_eq!(r.corrected, None);
            }
        }
        // The result's recommendation is recomputed from the same view the
        // executor corrected — it must match a fresh recommend() call.
        let view = table
            .sample_view(Some("v"), &uu_query::predicate::Predicate::True)
            .unwrap();
        assert_eq!(r.recommendation, recommend(&view));
    }
    // The three fixtures genuinely exercise all three outcomes.
    let outcomes: Vec<Recommendation> = [&healthy, &streaker, &sparse]
        .iter()
        .map(|t| {
            let v = t
                .sample_view(Some("v"), &uu_query::predicate::Predicate::True)
                .unwrap();
            recommend(&v)
        })
        .collect();
    assert_eq!(
        outcomes,
        vec![
            Recommendation::Bucket,
            Recommendation::MonteCarlo,
            Recommendation::CollectMoreData
        ]
    );
}

/// The COUNT dispatch of the engine matches the executor's corrected COUNT.
#[test]
fn count_dispatch_parity_through_sql() {
    let table = table_from_stream(scenario::figure6(10, 1.0, 1.0, 5).stream(), 400);
    let view = table
        .sample_view(None, &uu_query::predicate::Predicate::True)
        .unwrap();
    for (method, kind) in [
        (CorrectionMethod::Naive, EstimatorKind::Naive),
        (CorrectionMethod::Bucket, EstimatorKind::Bucket),
        (
            CorrectionMethod::MonteCarlo(MonteCarloConfig::fast()),
            EstimatorKind::MonteCarlo(MonteCarloConfig::fast()),
        ),
    ] {
        let r = execute_sql(&table, "SELECT COUNT(*) FROM t", method).unwrap();
        assert_eq!(r.corrected, kind.estimate_count(&view), "{kind:?}");
        assert_eq!(r.method, kind.count_method_name(), "{kind:?}");
    }
}
