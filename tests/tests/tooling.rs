//! End-to-end tests of the adoption tooling: CSV ingestion → catalog →
//! corrected SQL, plus the source-sensitivity diagnostic, with a proptest
//! round-trip on the CSV layer.

use proptest::prelude::*;
use uu_core::naive::NaiveEstimator;
use uu_core::sample::replay_checkpoints;
use uu_core::sensitivity::leave_one_source_out;
use uu_datagen::realworld;
use uu_query::catalog::Catalog;
use uu_query::csv::{load_observations, parse_csv};
use uu_query::exec::CorrectionMethod;
use uu_query::schema::{ColumnType, Schema};
use uu_query::table::IntegratedTable;
use uu_query::value::Value;

/// A CSV observation log of the Appendix F toy example flows through
/// ingestion, catalog registration, and corrected SQL to the Table 2 number.
#[test]
fn csv_to_catalog_to_corrected_sql() {
    let csv = "\
worker,company,employees
0,A,1000
0,B,2000
0,D,10000
1,B,2000
1,D,10000
2,D,10000
3,D,10000
4,A,1000
4,E,300
";
    let schema = Schema::new([
        ("company", ColumnType::Str),
        ("employees", ColumnType::Float),
    ]);
    let mut table = IntegratedTable::new("companies", schema, "company").unwrap();
    assert_eq!(load_observations(&mut table, csv, "worker").unwrap(), 9);

    let mut catalog = Catalog::new();
    catalog.register(table).unwrap();
    let r = catalog
        .execute_sql(
            "SELECT SUM(employees) FROM companies",
            CorrectionMethod::Bucket,
        )
        .unwrap();
    assert_eq!(r.observed, 13_300.0);
    assert!((r.corrected.unwrap() - 13_950.0).abs() < 1e-6); // Table 2
}

/// The sensitivity diagnostic flags the GDP streaker as the most influential
/// source — the §2.2 independence failure made visible.
#[test]
fn sensitivity_flags_the_gdp_streaker() {
    let d = realworld::us_gdp(13);
    let (_, view) = replay_checkpoints(d.stream(), &[60]).remove(0);
    let report = leave_one_source_out(&view, &NaiveEstimator::default()).unwrap();
    let top = report.most_influential().unwrap();
    // The streaker is the source with the 45-state dump.
    let max_contribution = report
        .influences
        .iter()
        .map(|i| i.contribution)
        .max()
        .unwrap();
    assert_eq!(top.contribution, max_contribution);
    assert_eq!(top.contribution, 45);
    assert!(report.max_relative_shift().unwrap() > 0.10);
}

/// On a balanced multi-source workload no single source dominates.
#[test]
fn sensitivity_is_flat_on_balanced_sources() {
    let d = realworld::tech_employment(13);
    let (_, view) = replay_checkpoints(d.stream(), &[500]).remove(0);
    let report = leave_one_source_out(&view, &NaiveEstimator::default()).unwrap();
    // 100 workers with 5 answers each: every influence should be small.
    assert!(report.max_relative_shift().unwrap() < 0.10);
}

fn csv_escape(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

proptest! {
    /// Arbitrary field content survives a serialize → parse round-trip.
    #[test]
    fn csv_roundtrip(rows in proptest::collection::vec(
        proptest::collection::vec("[ -~]{0,12}", 1..5), 1..10)
    ) {
        // Constant column count per document.
        let width = rows[0].len();
        let rows: Vec<Vec<String>> = rows
            .into_iter()
            .map(|mut r| {
                r.resize(width.max(1), String::new());
                r
            })
            .collect();
        let doc: String = rows
            .iter()
            .map(|r| r.iter().map(|f| csv_escape(f)).collect::<Vec<_>>().join(","))
            .map(|line| format!("{line}\n"))
            .collect();
        let parsed = parse_csv(&doc).unwrap();
        // A document of entirely empty fields in one column parses to one
        // empty-string field per row; general equality otherwise.
        prop_assert_eq!(parsed.len(), rows.len());
        for (got, want) in parsed.iter().zip(&rows) {
            prop_assert_eq!(got, want);
        }
    }

    /// The loader is panic-free on arbitrary input.
    #[test]
    fn csv_loader_is_panic_free(input in "[ -~\n\"]*") {
        let schema = Schema::new([("k", ColumnType::Str), ("v", ColumnType::Float)]);
        let mut table = IntegratedTable::new("t", schema, "k").unwrap();
        let _ = load_observations(&mut table, &input, "worker");
    }
}

/// Catalog + grouped SQL over two tables loaded from CSV.
#[test]
fn catalog_hosts_multiple_tables() {
    let mut catalog = Catalog::new();
    for name in ["east", "west"] {
        let schema = Schema::new([("k", ColumnType::Str), ("v", ColumnType::Float)]);
        let mut t = IntegratedTable::new(name, schema, "k").unwrap();
        let csv = "worker,k,v\n0,a,1\n0,b,2\n1,a,1\n1,b,2\n";
        load_observations(&mut t, csv, "worker").unwrap();
        catalog.register(t).unwrap();
    }
    assert_eq!(catalog.table_names(), vec!["east", "west"]);
    for name in ["east", "west"] {
        let r = catalog
            .execute_sql(
                &format!("SELECT SUM(v) FROM {name}"),
                CorrectionMethod::Naive,
            )
            .unwrap();
        assert_eq!(r.observed, 3.0);
        assert_eq!(r.corrected, Some(3.0)); // complete: every entity seen twice
    }
    // And values keep their table identity.
    catalog
        .get_mut("east")
        .unwrap()
        .insert_observation(7, vec![Value::from("c"), Value::from(9.0)])
        .unwrap();
    let east = catalog
        .execute_sql("SELECT COUNT(*) FROM east", CorrectionMethod::None)
        .unwrap();
    let west = catalog
        .execute_sql("SELECT COUNT(*) FROM west", CorrectionMethod::None)
        .unwrap();
    assert_eq!(east.observed, 3.0);
    assert_eq!(west.observed, 2.0);
}
