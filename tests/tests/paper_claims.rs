//! Figure-shape assertions: the qualitative claims of the paper's
//! evaluation (§6), checked against our simulated workloads.
//!
//! We do not assert absolute numbers (our data is simulated), but the
//! *shape* of every headline result: who wins, in which regime, and in which
//! direction the errors point.

use uu_core::bucket::DynamicBucketEstimator;
use uu_core::estimate::SumEstimator;
use uu_core::frequency::FrequencyEstimator;
use uu_core::montecarlo::{MonteCarloConfig, MonteCarloEstimator};
use uu_core::naive::NaiveEstimator;
use uu_core::recommend::{diagnose, recommend, Recommendation};
use uu_core::sample::{replay_checkpoints, SampleView};
use uu_datagen::realworld;
use uu_datagen::scenario;
use uu_integration_tests::rel_error;

fn view_at(s: &scenario::Scenario, n: usize) -> SampleView {
    replay_checkpoints(s.stream(), &[n]).remove(0).1
}

/// §6.1.1 / Figure 4: on the tech-employment workload the naïve and
/// frequency estimators overestimate, and bucket is the most accurate.
#[test]
fn fig4_bucket_wins_on_tech_employment() {
    let mut bucket_better_than_naive = 0;
    let mut naive_over = 0;
    let reps = 5;
    for seed in 0..reps {
        let d = realworld::tech_employment(100 + seed);
        let truth = d.ground_truth_sum();
        let (_, view) = replay_checkpoints(d.stream(), &[500]).remove(0);
        let naive = NaiveEstimator::default().estimate_sum(&view).unwrap();
        let bucket = DynamicBucketEstimator::default()
            .estimate_sum(&view)
            .unwrap();
        if naive > truth {
            naive_over += 1;
        }
        if rel_error(bucket, truth) < rel_error(naive, truth) {
            bucket_better_than_naive += 1;
        }
        // Bucket should be within ~25% of the truth at 500 answers.
        assert!(
            rel_error(bucket, truth) < 0.25,
            "seed {seed}: bucket {bucket} vs truth {truth}"
        );
    }
    assert!(naive_over >= reps - 1, "naive should overestimate");
    assert!(
        bucket_better_than_naive >= reps - 1,
        "bucket should beat naive almost always"
    );
}

/// §6.1.2 / Figure 5(a): with a stronger publicity–value correlation the
/// naïve overshoot grows; the frequency estimator sits below naïve
/// (singleton values are smaller than the global mean).
#[test]
fn fig5a_frequency_below_naive_under_correlation() {
    for seed in 0..5 {
        let d = realworld::tech_revenue(200 + seed);
        let (_, view) = replay_checkpoints(d.stream(), &[400]).remove(0);
        let naive = NaiveEstimator::default().estimate_sum(&view).unwrap();
        let freq = FrequencyEstimator::default().estimate_sum(&view).unwrap();
        assert!(
            freq < naive,
            "seed {seed}: freq ({freq}) should undercut naive ({naive})"
        );
    }
}

/// §6.1.3 / Figure 5(b): under the GDP streaker, Monte-Carlo is the only
/// reasonable estimator right after the streaker block.
#[test]
fn fig5b_monte_carlo_survives_the_streaker() {
    let mut mc_wins = 0;
    let reps = 3;
    for seed in 0..reps {
        let d = realworld::us_gdp(300 + seed);
        let truth = d.ground_truth_sum();
        // n = 60: the streaker's 45 answers plus a few normal ones.
        let (_, view) = replay_checkpoints(d.stream(), &[60]).remove(0);
        let naive = NaiveEstimator::default().estimate_sum(&view).unwrap();
        let mc = MonteCarloEstimator::new(MonteCarloConfig::default())
            .estimate_sum(&view)
            .unwrap();
        if rel_error(mc, truth) < rel_error(naive, truth) {
            mc_wins += 1;
        }
    }
    assert!(mc_wins >= reps - 1, "MC won only {mc_wins}/{reps} runs");
}

/// §6.1.3: all estimators converge once the full GDP stream is in
/// (the paper: "all estimators converge after 60 samples (for N = 50)").
#[test]
fn fig5b_everything_converges_at_the_end() {
    let d = realworld::us_gdp(9);
    let truth = d.ground_truth_sum();
    let n = d.sample.len();
    let (_, view) = replay_checkpoints(d.stream(), &[n]).remove(0);
    for est in [
        Box::new(NaiveEstimator::default()) as Box<dyn SumEstimator>,
        Box::new(FrequencyEstimator::default()),
        Box::new(DynamicBucketEstimator::default()),
    ] {
        let e = est.estimate_sum(&view).unwrap();
        assert!(
            rel_error(e, truth) < 0.25,
            "{} off by {:.0}% at full stream",
            est.name(),
            rel_error(e, truth) * 100.0
        );
    }
}

/// §6.2 / Figure 6 top-left: in the ideal regime (uniform publicity, no
/// correlation, many workers) every estimator is accurate early.
#[test]
fn fig6_ideal_regime_everyone_is_accurate() {
    let mut errs = [0.0f64; 3];
    let reps = 5;
    for seed in 0..reps {
        let s = scenario::figure6(100, 0.0, 0.0, 400 + seed);
        let truth = s.population.ground_truth_sum();
        let view = view_at(&s, 300);
        let ests: [Box<dyn SumEstimator>; 3] = [
            Box::new(NaiveEstimator::default()),
            Box::new(FrequencyEstimator::default()),
            Box::new(DynamicBucketEstimator::default()),
        ];
        for (i, est) in ests.iter().enumerate() {
            errs[i] += rel_error(est.estimate_sum_or_observed(&view), truth);
        }
    }
    for (i, e) in errs.iter().enumerate() {
        let mean = e / reps as f64;
        assert!(
            mean < 0.10,
            "estimator {i} mean error {mean:.3} in ideal regime"
        );
    }
}

/// §6.2 / Figure 6 middle row: realistic regime (λ=4, ρ=1) — the bucket
/// estimator beats naïve and does not overestimate on average.
#[test]
fn fig6_realistic_regime_bucket_beats_naive() {
    let reps = 8;
    let mut naive_err = 0.0;
    let mut bucket_err = 0.0;
    let mut bucket_signed = 0.0;
    for seed in 0..reps {
        let s = scenario::figure6(10, 4.0, 1.0, 500 + seed);
        let truth = s.population.ground_truth_sum();
        let view = view_at(&s, 400);
        let naive = NaiveEstimator::default().estimate_sum_or_observed(&view);
        let bucket = DynamicBucketEstimator::default().estimate_sum_or_observed(&view);
        naive_err += rel_error(naive, truth);
        bucket_err += rel_error(bucket, truth);
        bucket_signed += bucket - truth;
    }
    assert!(
        bucket_err < naive_err,
        "bucket mean err {bucket_err} vs naive {naive_err}"
    );
    // "the bucket estimator performs the best and does not over-estimate":
    // allow a small positive residue but require it far below naive's bias.
    assert!(
        bucket_signed / reps as f64 <= 2_000.0,
        "bucket bias {bucket_signed}"
    );
}

/// §6.2 / Figure 6 bottom row: rare-event regime (λ=4, ρ=0) — *every*
/// estimator underestimates; black swans are unpredictable.
#[test]
fn fig6_rare_event_regime_everyone_underestimates() {
    let reps: usize = 8;
    let mut under = [0usize; 4];
    for seed in 0..reps as u64 {
        let s = scenario::figure6(10, 4.0, 0.0, 600 + seed);
        let truth = s.population.ground_truth_sum();
        let view = view_at(&s, 400);
        let ests: [Box<dyn SumEstimator>; 4] = [
            Box::new(NaiveEstimator::default()),
            Box::new(FrequencyEstimator::default()),
            Box::new(DynamicBucketEstimator::default()),
            Box::new(MonteCarloEstimator::new(MonteCarloConfig::fast())),
        ];
        for (i, est) in ests.iter().enumerate() {
            if est.estimate_sum_or_observed(&view) < truth {
                under[i] += 1;
            }
        }
    }
    for (i, &u) in under.iter().enumerate() {
        assert!(
            u >= reps - 2,
            "estimator {i} underestimated only {u}/{reps} times"
        );
    }
}

/// §6.3 / Figure 7(a): with streakers-only sources, the Chao92-based
/// estimators blow up while Monte-Carlo stays close to the observed sum.
#[test]
fn fig7a_streakers_only() {
    let s = scenario::streakers_only(3, 11);
    let truth = s.population.ground_truth_sum();
    // Mid-second-streaker: n = 150.
    let view = view_at(&s, 150);
    let naive = NaiveEstimator::default().estimate_sum(&view).unwrap();
    let mc = MonteCarloEstimator::new(MonteCarloConfig::default())
        .estimate_sum(&view)
        .unwrap();
    assert!(
        rel_error(mc, truth) < rel_error(naive, truth),
        "MC ({mc}) should beat naive ({naive}) under streakers (truth {truth})"
    );
    // The policy detects it, too.
    assert!(diagnose(&view).has_streaker());
    assert_eq!(recommend(&view), Recommendation::MonteCarlo);
}

/// §6.3 / Figure 7(b): a streaker injected at n = 160 throws off the
/// Chao92-based estimators; MC absorbs it.
#[test]
fn fig7b_injected_streaker() {
    let s = scenario::streaker_injected(13);
    let truth = s.population.ground_truth_sum();
    // Right after the streaker: n = 280 (160 + 100 streaker + some tail).
    let view = view_at(&s, 280);
    let naive = NaiveEstimator::default().estimate_sum(&view).unwrap();
    let mc = MonteCarloEstimator::new(MonteCarloConfig::default())
        .estimate_sum(&view)
        .unwrap();
    assert!(
        rel_error(mc, truth) < rel_error(naive, truth),
        "MC ({mc}) vs naive ({naive}), truth {truth}"
    );
}

/// §6.5: the recommendation policy routes healthy multi-source samples to
/// bucket and starved ones to more data.
#[test]
fn recommendation_policy_on_scenarios() {
    let healthy = scenario::figure6(20, 1.0, 1.0, 21);
    let view = view_at(&healthy, 400);
    assert_eq!(recommend(&view), Recommendation::Bucket);

    let early = view_at(&healthy, 20); // mostly singletons early on
    assert_eq!(recommend(&early), Recommendation::CollectMoreData);
}
