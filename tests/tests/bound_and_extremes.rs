//! Figure 7(c)–(f): the upper bound and the AVG/MIN/MAX strategies on the
//! §6.4 synthetic workload (λ = 1, ρ = 1, 20 even sources).

use uu_core::aggregates::{
    avg_estimate, max_report, min_report, ExtremeReport, EXTREME_TRUST_THRESHOLD,
};
use uu_core::bound::{sum_upper_bound, UpperBoundConfig};
use uu_core::bucket::DynamicBucketEstimator;
use uu_core::estimate::SumEstimator;
use uu_core::naive::NaiveEstimator;
use uu_core::sample::replay_checkpoints;
use uu_datagen::scenario::section64;

/// Figure 7(c): the bound is loose but valid — above the truth and above
/// every estimate — and tightens as observations accumulate.
#[test]
fn fig7c_upper_bound_is_valid_and_tightens() {
    let mut holds = 0;
    let mut total = 0;
    let reps = 10;
    for seed in 0..reps {
        let s = section64(700 + seed);
        let truth = s.population.ground_truth_sum();
        let views = replay_checkpoints(s.stream(), &[300, 600, 1000]);
        let mut last_bound = f64::INFINITY;
        for (_, view) in &views {
            let Some(b) = sum_upper_bound(view, UpperBoundConfig::default()) else {
                continue;
            };
            total += 1;
            if b.phi_d_bound >= truth {
                holds += 1;
            }
            // Above the point estimates.
            let naive = NaiveEstimator::default().estimate_sum_or_observed(view);
            let bucket = DynamicBucketEstimator::default().estimate_sum_or_observed(view);
            assert!(b.phi_d_bound >= naive.min(bucket), "bound below estimates");
            assert!(
                b.phi_d_bound <= last_bound * 1.05,
                "bound grew materially with more data"
            );
            last_bound = b.phi_d_bound;
        }
    }
    // 99%-confidence bound: allow one violation across all checkpoints.
    assert!(
        holds + 1 >= total,
        "bound violated too often: {holds}/{total}"
    );
}

/// Figure 7(d): the bucket-corrected AVG removes the publicity–value bias.
/// With ρ = 1 popular items are large, so the observed mean overestimates
/// the true mean; the corrected mean must sit closer.
#[test]
fn fig7d_avg_correction_reduces_bias() {
    let reps = 10;
    let mut improved = 0;
    for seed in 0..reps {
        let s = section64(800 + seed);
        let truth = s.population.ground_truth_avg().unwrap();
        let (_, view) = replay_checkpoints(s.stream(), &[400]).remove(0);
        let avg = avg_estimate(&view, &DynamicBucketEstimator::default()).unwrap();
        assert!(
            avg.observed > truth,
            "seed {seed}: observed mean should overestimate under rho=1"
        );
        if (avg.corrected - truth).abs() < (avg.observed - truth).abs() {
            improved += 1;
        }
    }
    assert!(improved >= reps - 2, "AVG corrected only {improved}/{reps}");
}

/// Figure 7(e)/(f): when the MIN/MAX strategy *does* endorse an extreme, it
/// is almost always the true extreme. We measure precision over many seeds.
#[test]
fn fig7ef_trusted_extremes_are_correct() {
    let reps = 40;
    let mut reported = 0;
    let mut correct = 0;
    for seed in 0..reps {
        let s = section64(900 + seed);
        let true_max = s.population.ground_truth_max().unwrap();
        let true_min = s.population.ground_truth_min().unwrap();
        let (_, view) = replay_checkpoints(s.stream(), &[600]).remove(0);
        let buckets = DynamicBucketEstimator::default();
        if let Some(ExtremeReport::Trusted(v)) =
            max_report(&view, &buckets, EXTREME_TRUST_THRESHOLD)
        {
            reported += 1;
            if v == true_max {
                correct += 1;
            }
        }
        if let Some(ExtremeReport::Trusted(v)) =
            min_report(&view, &buckets, EXTREME_TRUST_THRESHOLD)
        {
            reported += 1;
            if v == true_min {
                correct += 1;
            }
        }
    }
    assert!(reported > 0, "the strategy never endorsed an extreme");
    let precision = correct as f64 / reported as f64;
    assert!(
        precision >= 0.9,
        "trusted extremes wrong too often: {correct}/{reported}"
    );
}

/// With ρ = 1 the *max* is popular (observed early, bucket complete, trusted
/// quickly) while the *min* hides in the unpopular tail — MAX should be
/// endorsed at least as often as MIN.
#[test]
fn fig7ef_max_is_trusted_earlier_than_min_under_positive_correlation() {
    let reps = 20;
    let mut max_trusted = 0;
    let mut min_trusted = 0;
    for seed in 0..reps {
        let s = section64(950 + seed);
        let (_, view) = replay_checkpoints(s.stream(), &[300]).remove(0);
        let buckets = DynamicBucketEstimator::default();
        if max_report(&view, &buckets, EXTREME_TRUST_THRESHOLD).is_some_and(|r| r.is_trusted()) {
            max_trusted += 1;
        }
        if min_report(&view, &buckets, EXTREME_TRUST_THRESHOLD).is_some_and(|r| r.is_trusted()) {
            min_trusted += 1;
        }
    }
    assert!(
        max_trusted >= min_trusted,
        "max trusted {max_trusted} < min trusted {min_trusted}"
    );
    assert!(
        max_trusted > reps / 2,
        "max rarely trusted: {max_trusted}/{reps}"
    );
}
