//! Cross-crate property tests: the split lemma (Appendix C), estimator
//! invariants over generated samples, SQL round-trips and determinism.

use proptest::prelude::*;
use uu_core::bucket::DynamicBucketEstimator;
use uu_core::estimate::SumEstimator;
use uu_core::frequency::FrequencyEstimator;
use uu_core::naive::NaiveEstimator;
use uu_core::sample::{replay_checkpoints, SampleView};
use uu_datagen::scenario::figure6;
use uu_query::predicate::{CmpOp, Predicate};
use uu_query::query::AggregateQuery;
use uu_query::sql::parse;
use uu_query::value::Value;

/// Appendix C: under an even split (n and c halved, f1 split by α), the
/// Chao92 count estimate can only grow:
/// `nc/(n−f1) ≤ (n/2·c/2)/(n/2−αf1) + (n/2·c/2)/(n/2−(1−α)f1)`.
#[test]
fn split_lemma_holds_on_a_grid() {
    for n in [10.0f64, 50.0, 200.0, 1000.0] {
        for c_frac in [0.2, 0.5, 0.9] {
            let c = n * c_frac;
            for f1_frac in [0.0, 0.2, 0.4, 0.49] {
                let f1 = n * f1_frac; // f1 < n/2 keeps both denominators positive
                let before = n * c / (n - f1);
                for alpha_step in 0..=20 {
                    let alpha = alpha_step as f64 / 20.0;
                    let after = (n / 2.0 * c / 2.0) / (n / 2.0 - alpha * f1)
                        + (n / 2.0 * c / 2.0) / (n / 2.0 - (1.0 - alpha) * f1);
                    assert!(
                        after >= before - 1e-9,
                        "lemma violated: n={n} c={c} f1={f1} alpha={alpha}: {after} < {before}"
                    );
                }
            }
        }
    }
}

/// The minimum of the split expression is at α = 0.5 and equals the
/// before-split estimate (Appendix C's second claim).
#[test]
fn split_lemma_minimum_at_even_split() {
    let (n, c, f1) = (100.0f64, 60.0, 20.0);
    let before = n * c / (n - f1);
    let at = |alpha: f64| {
        (n / 2.0 * c / 2.0) / (n / 2.0 - alpha * f1)
            + (n / 2.0 * c / 2.0) / (n / 2.0 - (1.0 - alpha) * f1)
    };
    assert!((at(0.5) - before).abs() < 1e-9);
    assert!(at(0.3) > at(0.5));
    assert!(at(0.9) > at(0.5));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The dynamic bucket total |Δ| never exceeds the unsplit inner
    /// estimator's |Δ| — Algorithm 1 only accepts strict improvements.
    #[test]
    fn bucket_never_worse_than_inner(
        pairs in proptest::collection::vec((1.0f64..10_000.0, 1u64..6), 2..40)
    ) {
        let sample = SampleView::from_value_multiplicities(pairs);
        let naive = NaiveEstimator::default().estimate_delta(&sample).abs_or_infinite();
        let bucket = DynamicBucketEstimator::default().estimate_delta(&sample).abs_or_infinite();
        prop_assert!(bucket <= naive + 1e-6, "bucket {} > naive {}", bucket, naive);
    }

    /// Corrected sums never fall below the observed sum for non-negative
    /// attribute values (Δ̂ ≥ 0 in that case for all estimators).
    #[test]
    fn corrections_are_non_negative_for_positive_values(
        pairs in proptest::collection::vec((0.0f64..1_000.0, 1u64..6), 1..40)
    ) {
        let sample = SampleView::from_value_multiplicities(pairs);
        let observed = sample.observed_sum();
        let ests: [Box<dyn SumEstimator>; 3] = [
            Box::new(NaiveEstimator::default()),
            Box::new(FrequencyEstimator::default()),
            Box::new(DynamicBucketEstimator::default()),
        ];
        for est in ests {
            if let Some(corrected) = est.estimate_sum(&sample) {
                prop_assert!(
                    corrected >= observed - 1e-9,
                    "{} corrected below observed", est.name()
                );
            }
        }
    }

    /// Estimators are insensitive to item enumeration order.
    #[test]
    fn estimators_are_permutation_invariant(
        pairs in proptest::collection::vec((1.0f64..1_000.0, 1u64..5), 2..25),
        seed in 0u64..100,
    ) {
        let mut shuffled = pairs.clone();
        let mut rng = uu_stats::rng::Rng::new(seed);
        rng.shuffle(&mut shuffled);
        let a = SampleView::from_value_multiplicities(pairs);
        let b = SampleView::from_value_multiplicities(shuffled);
        for est in [
            Box::new(NaiveEstimator::default()) as Box<dyn SumEstimator>,
            Box::new(FrequencyEstimator::default()),
            Box::new(DynamicBucketEstimator::default()),
        ] {
            let da = est.estimate_delta(&a).delta;
            let db = est.estimate_delta(&b).delta;
            match (da, db) {
                (Some(x), Some(y)) => prop_assert!((x - y).abs() < 1e-6 * (1.0 + x.abs())),
                (None, None) => {}
                _ => prop_assert!(false, "{}: definedness differs", est.name()),
            }
        }
    }

    /// Dynamic buckets always partition the sample: every unique item lands
    /// in exactly one bucket, ranges are ordered and disjoint, and the value
    /// range [min, max] is covered.
    #[test]
    fn buckets_partition_and_cover(
        pairs in proptest::collection::vec((0.0f64..5_000.0, 1u64..5), 1..35)
    ) {
        let sample = SampleView::from_value_multiplicities(pairs);
        let reports = DynamicBucketEstimator::default().bucketize(&sample);
        prop_assert!(!reports.is_empty());
        let total_c: u64 = reports.iter().map(|b| b.c).sum();
        let total_n: u64 = reports.iter().map(|b| b.n).sum();
        prop_assert_eq!(total_c, sample.c());
        prop_assert_eq!(total_n, sample.n());
        prop_assert_eq!(reports.first().unwrap().lo, sample.min_value().unwrap());
        prop_assert_eq!(reports.last().unwrap().hi, sample.max_value().unwrap());
        for w in reports.windows(2) {
            prop_assert!(w[0].hi < w[1].lo, "overlapping buckets");
        }
    }

    /// Scaling every attribute value by a positive constant scales every
    /// estimator's Δ by the same constant (the statistics only depend on
    /// multiplicities; the value model is linear).
    #[test]
    fn estimates_are_scale_equivariant(
        pairs in proptest::collection::vec((1.0f64..1_000.0, 1u64..5), 2..25),
        scale in 0.5f64..20.0,
    ) {
        let base = SampleView::from_value_multiplicities(pairs.iter().copied());
        let scaled = SampleView::from_value_multiplicities(
            pairs.iter().map(|&(v, m)| (v * scale, m)),
        );
        for est in [
            Box::new(NaiveEstimator::default()) as Box<dyn SumEstimator>,
            Box::new(FrequencyEstimator::default()),
        ] {
            let a = est.estimate_delta(&base).delta;
            let b = est.estimate_delta(&scaled).delta;
            match (a, b) {
                (Some(x), Some(y)) => prop_assert!(
                    (x * scale - y).abs() < 1e-6 * (1.0 + y.abs()),
                    "{}: {} * {} != {}", est.name(), x, scale, y
                ),
                (None, None) => {}
                _ => prop_assert!(false, "definedness changed under scaling"),
            }
        }
    }

    /// SQL pretty-print → parse is the identity on structured queries.
    #[test]
    fn sql_roundtrip(
        agg in 0usize..5,
        col in "[a-z][a-z0-9_]{0,8}",
        table in "[a-z][a-z0-9_]{0,8}",
        lit in -1_000i64..1_000,
        use_pred in proptest::bool::ANY,
    ) {
        let builder = match agg {
            0 => AggregateQuery::sum(col.clone()),
            1 => AggregateQuery::count_star(),
            2 => AggregateQuery::avg(col.clone()),
            3 => AggregateQuery::min(col.clone()),
            _ => AggregateQuery::max(col.clone()),
        };
        let builder = if use_pred {
            builder.filter(
                Predicate::cmp("a", CmpOp::Ge, Value::Int(lit))
                    .or(Predicate::cmp("b", CmpOp::Ne, Value::from("x'y")).not()),
            )
        } else {
            builder
        };
        let q = builder.from(table);
        // Keywords could collide with generated identifiers; skip those.
        for kw in ["select", "from", "where", "and", "or", "not", "true", "null",
                   "sum", "count", "avg", "min", "max"] {
            prop_assume!(!q.table.eq_ignore_ascii_case(kw));
            prop_assume!(q.column.as_deref().map_or(true, |c| !c.eq_ignore_ascii_case(kw)));
        }
        let reparsed = parse(&q.to_string());
        prop_assert_eq!(reparsed.as_ref(), Ok(&q), "sql: {}", q.to_string());
    }
}

/// Full-pipeline determinism: identical seeds produce identical estimate
/// series through datagen → accumulation → every estimator.
#[test]
fn pipeline_is_deterministic() {
    let series = |seed: u64| -> Vec<(Option<f64>, Option<f64>)> {
        let s = figure6(10, 4.0, 1.0, seed);
        let checkpoints: Vec<usize> = (1..=5).map(|i| i * 100).collect();
        replay_checkpoints(s.stream(), &checkpoints)
            .into_iter()
            .map(|(_, view)| {
                (
                    NaiveEstimator::default().estimate_sum(&view),
                    DynamicBucketEstimator::default().estimate_sum(&view),
                )
            })
            .collect()
    };
    assert_eq!(series(42), series(42));
    assert_ne!(series(42), series(43), "different seeds should differ");
}
