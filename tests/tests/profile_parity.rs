//! Property tests pinning the tentpole guarantee of the `ViewProfile` layer:
//! for arbitrary samples, every registry kind's profiled estimate equals its
//! direct `estimate_delta`/`estimate_sum`/`estimate_count` result
//! **bit-for-bit** (exact `f64` equality, no tolerance), and repeated profile
//! reads return identical memoized values without recomputing anything.

use proptest::prelude::*;
use uu_core::engine::EstimatorKind;
use uu_core::estimate::SumEstimator;
use uu_core::montecarlo::MonteCarloConfig;
use uu_core::profile::ViewProfile;
use uu_core::sample::{SampleView, StreamAccumulator};
use uu_stats::species::SpeciesEstimator;

/// Every registry kind (fast Monte-Carlo grid so the property stays quick).
fn registry_kinds() -> Vec<EstimatorKind> {
    let mut kinds = EstimatorKind::standard(MonteCarloConfig::fast());
    kinds.push(EstimatorKind::Policy);
    kinds
}

/// Exact-equality parity assertions for one kind over one view sharing one
/// profile.
fn assert_parity(
    kind: EstimatorKind,
    view: &SampleView,
    profile: &ViewProfile<'_>,
) -> Result<(), TestCaseError> {
    let est = kind.build();
    prop_assert_eq!(
        est.estimate_delta_profiled(profile),
        est.estimate_delta(view),
        "delta parity broke for {:?}",
        kind
    );
    prop_assert_eq!(
        est.estimate_sum_profiled(profile),
        est.estimate_sum(view),
        "sum parity broke for {:?}",
        kind
    );
    prop_assert_eq!(
        kind.estimate_count_profiled(profile),
        kind.estimate_count(view),
        "count parity broke for {:?}",
        kind
    );
    Ok(())
}

proptest! {
    /// Lineage-free samples from arbitrary (value, multiplicity) pairs —
    /// the minimal estimator input.
    #[test]
    fn profiled_equals_direct_on_value_multiplicity_samples(
        pairs in proptest::collection::vec((0.0f64..10_000.0, 1u64..8), 0..60)
    ) {
        let view = SampleView::from_value_multiplicities(pairs.iter().copied());
        let profile = ViewProfile::new(&view);
        for kind in registry_kinds() {
            assert_parity(kind, &view, &profile)?;
        }
    }

    /// Lineage-bearing samples from arbitrary observation streams — the
    /// regime where Monte-Carlo and the policy's streaker detection are
    /// actually exercised.
    #[test]
    fn profiled_equals_direct_on_lineage_streams(
        obs in proptest::collection::vec((0u64..25, 0u32..6), 1..160)
    ) {
        let mut acc = StreamAccumulator::new();
        for &(item, source) in &obs {
            acc.push(item, (item as f64 + 1.0) * 3.5, source);
        }
        let view = acc.view();
        let profile = ViewProfile::new(&view);
        for kind in registry_kinds() {
            assert_parity(kind, &view, &profile)?;
        }
    }

    /// Memoization invariant: repeated reads return identical values and do
    /// not rebuild anything.
    #[test]
    fn repeated_profile_reads_are_identical_and_free(
        pairs in proptest::collection::vec((0.0f64..1000.0, 1u64..6), 1..50)
    ) {
        let view = SampleView::from_value_multiplicities(pairs.iter().copied());
        let profile = ViewProfile::new(&view);
        // First pass builds, second pass must hit the memo bit-for-bit.
        let first: Vec<_> = SpeciesEstimator::ALL
            .iter()
            .map(|&e| profile.species(e))
            .collect();
        let delta1 = profile.bucket_delta();
        let rec1 = profile.recommendation();
        let diag1 = profile.diagnostics();
        let ranks1: Vec<u64> = profile.rank_multiplicities().to_vec();
        let sorted1: Vec<f64> = profile.sorted_items().iter().map(|i| i.value).collect();
        let builds = profile.metrics().total_builds();

        let second: Vec<_> = SpeciesEstimator::ALL
            .iter()
            .map(|&e| profile.species(e))
            .collect();
        prop_assert_eq!(first, second);
        prop_assert_eq!(delta1, profile.bucket_delta());
        prop_assert_eq!(rec1, profile.recommendation());
        prop_assert_eq!(diag1, profile.diagnostics());
        let _ = profile.bucket_reports();
        prop_assert_eq!(ranks1, profile.rank_multiplicities().to_vec());
        let sorted2: Vec<f64> = profile.sorted_items().iter().map(|i| i.value).collect();
        prop_assert_eq!(sorted1, sorted2);
        prop_assert_eq!(profile.metrics().total_builds(), builds,
            "repeated reads must not rebuild statistics");
    }
}
