//! Cross-query profile reuse: the `ProfileCache` consulted by the cached
//! execution paths must (a) return bit-for-bit the uncached results, (b) hit
//! on repeated identical queries — counter-asserted, including that a hit
//! performs zero statistics builds, (c) evict least-recently-used entries at
//! capacity, and (d) invalidate on table mutation so results always reflect
//! the current table state.

use uu_query::catalog::Catalog;
use uu_query::exec::{
    execute_cached, execute_grouped_cached, execute_sql, execute_sql_grouped, CorrectionMethod,
    QueryProfileCache,
};
use uu_query::schema::{ColumnType, Schema};
use uu_query::sql::parse;
use uu_query::table::IntegratedTable;
use uu_query::value::Value;

fn tech_table() -> IntegratedTable {
    let schema = Schema::new([
        ("company", ColumnType::Str),
        ("employees", ColumnType::Float),
        ("state", ColumnType::Str),
    ]);
    let mut t = IntegratedTable::new("companies", schema, "company").unwrap();
    let rows: [(u32, &str, f64, &str); 9] = [
        (0, "A", 1000.0, "CA"),
        (0, "B", 2000.0, "CA"),
        (0, "D", 10_000.0, "WA"),
        (1, "B", 2000.0, "CA"),
        (1, "D", 10_000.0, "WA"),
        (2, "D", 10_000.0, "WA"),
        (3, "D", 10_000.0, "WA"),
        (4, "A", 1000.0, "CA"),
        (4, "E", 300.0, "CA"),
    ];
    for (src, name, emp, state) in rows {
        t.insert_observation(
            src,
            vec![Value::from(name), Value::from(emp), Value::from(state)],
        )
        .unwrap();
    }
    t
}

/// Exact-equality comparison of the fields a cached run could plausibly
/// corrupt.
fn assert_same(a: &uu_query::exec::QueryResult, b: &uu_query::exec::QueryResult) {
    assert_eq!(a.observed.to_bits(), b.observed.to_bits());
    assert_eq!(a.corrected, b.corrected);
    assert_eq!(a.n_hat, b.n_hat);
    assert_eq!(a.upper_bound, b.upper_bound);
    assert_eq!(a.method, b.method);
    assert_eq!(a.recommendation, b.recommendation);
}

#[test]
fn repeated_queries_hit_and_match_the_uncached_path() {
    let table = tech_table();
    let cache = QueryProfileCache::new(16);
    let sql = "SELECT SUM(employees) FROM companies WHERE employees < 5000";
    let query = parse(sql).unwrap();

    let uncached = execute_sql(&table, sql, CorrectionMethod::Bucket).unwrap();
    let first = execute_cached(&table, &query, CorrectionMethod::Bucket, &cache).unwrap();
    let second = execute_cached(&table, &query, CorrectionMethod::Bucket, &cache).unwrap();
    assert_same(&uncached, &first);
    assert_same(&first, &second);

    let m = cache.metrics();
    assert_eq!(m.misses, 1, "first run misses");
    assert_eq!(m.hits, 1, "second run hits");
    assert_eq!(m.len, 1);

    // One cached selection serves every aggregate and correction method.
    for (sql, method) in [
        (
            "SELECT AVG(employees) FROM companies WHERE employees < 5000",
            CorrectionMethod::Bucket,
        ),
        (
            "SELECT MIN(employees) FROM companies WHERE employees < 5000",
            CorrectionMethod::Bucket,
        ),
        (
            "SELECT SUM(employees) FROM companies WHERE employees < 5000",
            CorrectionMethod::Naive,
        ),
    ] {
        let query = parse(sql).unwrap();
        let cached = execute_cached(&table, &query, method, &cache).unwrap();
        let direct = execute_sql(&table, sql, method).unwrap();
        assert_same(&direct, &cached);
    }
    let m = cache.metrics();
    assert_eq!(m.misses, 1, "same universe: no further misses");
    assert_eq!(m.hits, 4);
}

#[test]
fn a_cache_hit_rebuilds_no_statistics() {
    // What the executor does on a hit: thaw the selection's snapshot and run
    // estimators over it. Even a full 5-estimator session pass must perform
    // zero statistics builds on the thawed profile.
    let table = tech_table();
    let view = table
        .sample_view(Some("employees"), &uu_query::predicate::Predicate::True)
        .unwrap();
    let snapshot = uu_core::profile::ProfileSnapshot::capture(view);
    let profile = snapshot.profile();
    let results = uu_core::engine::EstimationSession::all().run_profiled(&profile);
    assert_eq!(results.len(), 5);
    assert!(results.iter().any(|r| r.corrected.is_some()));
    assert_eq!(
        profile.metrics().total_builds(),
        0,
        "the hit path must reuse every frozen statistic"
    );
}

#[test]
fn grouped_queries_cache_per_group_universes() {
    let table = tech_table();
    let cache = QueryProfileCache::new(8);
    let sql = "SELECT SUM(employees) FROM companies GROUP BY state";
    let query = parse(sql).unwrap();

    let direct = execute_sql_grouped(&table, sql, CorrectionMethod::Naive).unwrap();
    let cached1 = execute_grouped_cached(&table, &query, CorrectionMethod::Naive, &cache).unwrap();
    let cached2 = execute_grouped_cached(&table, &query, CorrectionMethod::Naive, &cache).unwrap();

    assert_eq!(direct.len(), cached1.len());
    for ((d, c1), c2) in direct.iter().zip(&cached1).zip(&cached2) {
        assert_eq!(d.key, c1.key);
        assert_eq!(c1.key, c2.key);
        assert_same(&d.result, &c1.result);
        assert_same(&c1.result, &c2.result);
    }
    let m = cache.metrics();
    assert_eq!(m.misses, 1, "one entry for the whole grouped selection");
    assert_eq!(m.hits, 1);
}

#[test]
fn capacity_bound_evicts_lru_selections() {
    let table = tech_table();
    let cache = QueryProfileCache::new(2);
    let queries = [
        "SELECT SUM(employees) FROM companies WHERE employees < 1500",
        "SELECT SUM(employees) FROM companies WHERE employees < 2500",
        "SELECT SUM(employees) FROM companies WHERE employees < 99999",
    ];
    for sql in queries {
        let q = parse(sql).unwrap();
        let _ = execute_cached(&table, &q, CorrectionMethod::Bucket, &cache).unwrap();
    }
    let m = cache.metrics();
    assert_eq!(m.misses, 3);
    assert_eq!(m.evictions, 1, "third insert evicts the LRU entry");
    assert_eq!(m.len, 2);
    // The oldest selection was evicted: running it again misses …
    let q0 = parse(queries[0]).unwrap();
    let _ = execute_cached(&table, &q0, CorrectionMethod::Bucket, &cache).unwrap();
    assert_eq!(cache.metrics().misses, 4);
    // … while the most recent one still hits.
    let q2 = parse(queries[2]).unwrap();
    let _ = execute_cached(&table, &q2, CorrectionMethod::Bucket, &cache).unwrap();
    assert_eq!(cache.metrics().hits, 1);
}

#[test]
fn catalog_mutation_invalidates_and_results_track_the_new_state() {
    let mut catalog = Catalog::new();
    catalog.register(tech_table()).unwrap();
    let sql = "SELECT COUNT(*) FROM companies";

    let before = catalog
        .execute_sql_cached(sql, CorrectionMethod::Naive)
        .unwrap();
    assert_eq!(before.observed, 4.0);
    let _ = catalog
        .execute_sql_cached(sql, CorrectionMethod::Naive)
        .unwrap();
    assert_eq!(catalog.cache().metrics().hits, 1);

    // Mutate: a brand-new entity arrives.
    catalog
        .get_mut("companies")
        .unwrap()
        .insert_observation(
            5,
            vec![Value::from("F"), Value::from(750.0), Value::from("OR")],
        )
        .unwrap();
    assert!(
        catalog.cache().metrics().invalidations > 0,
        "get_mut must invalidate the table's entries"
    );

    let after = catalog
        .execute_sql_cached(sql, CorrectionMethod::Naive)
        .unwrap();
    assert_eq!(after.observed, 5.0, "cached result reflects the new row");
    // And the fresh state is itself cached again.
    let again = catalog
        .execute_sql_cached(sql, CorrectionMethod::Naive)
        .unwrap();
    assert_eq!(again.observed, 5.0);
    assert_eq!(catalog.cache().metrics().hits, 2);
}

#[test]
fn distinct_tables_with_equal_name_and_version_do_not_share_entries() {
    // Two tables named "companies", both at version 9, different contents:
    // the per-object instance id must keep their cache entries apart even
    // through one shared cache.
    let a = tech_table();
    let mut b = IntegratedTable::new(
        "companies",
        Schema::new([
            ("company", ColumnType::Str),
            ("employees", ColumnType::Float),
            ("state", ColumnType::Str),
        ]),
        "company",
    )
    .unwrap();
    for i in 0..9u32 {
        b.insert_observation(
            i % 3,
            vec![
                Value::from(format!("X{}", i % 5)),
                Value::from(77.0),
                Value::from("NV"),
            ],
        )
        .unwrap();
    }
    assert_eq!(a.version(), b.version());
    assert_ne!(a.instance(), b.instance());

    let cache = QueryProfileCache::new(8);
    let sql = "SELECT SUM(employees) FROM companies";
    let query = parse(sql).unwrap();
    let ra = execute_cached(&a, &query, CorrectionMethod::None, &cache).unwrap();
    let rb = execute_cached(&b, &query, CorrectionMethod::None, &cache).unwrap();
    assert_eq!(ra.observed, 13_300.0);
    assert_eq!(rb.observed, 5.0 * 77.0);
    assert_eq!(cache.metrics().misses, 2, "no cross-table hit");

    // A clone is a new table object too: it may diverge from the original.
    let c = a.clone();
    assert_ne!(a.instance(), c.instance());
    let _ = execute_cached(&c, &query, CorrectionMethod::None, &cache).unwrap();
    assert_eq!(cache.metrics().misses, 3);
}

#[test]
fn predicate_fingerprints_are_column_case_insensitive() {
    // Predicate evaluation matches columns case-insensitively, so the two
    // spellings denote the same estimation universe and must share an entry.
    let table = tech_table();
    let cache = QueryProfileCache::new(8);
    let lower = parse("SELECT SUM(employees) FROM companies WHERE employees < 5000").unwrap();
    let upper = parse("SELECT SUM(employees) FROM companies WHERE EMPLOYEES < 5000").unwrap();
    let r1 = execute_cached(&table, &lower, CorrectionMethod::Bucket, &cache).unwrap();
    let r2 = execute_cached(&table, &upper, CorrectionMethod::Bucket, &cache).unwrap();
    assert_same(&r1, &r2);
    let m = cache.metrics();
    assert_eq!(m.misses, 1, "one universe, one entry");
    assert_eq!(m.hits, 1);
}

#[test]
fn grouped_cached_without_group_by_degrades_to_single_null_group() {
    let table = tech_table();
    let cache = QueryProfileCache::new(4);
    let query = parse("SELECT SUM(employees) FROM companies").unwrap();
    let rows = execute_grouped_cached(&table, &query, CorrectionMethod::Bucket, &cache).unwrap();
    assert_eq!(rows.len(), 1);
    assert!(rows[0].key.is_null());
    let direct = execute_sql(
        &table,
        "SELECT SUM(employees) FROM companies",
        CorrectionMethod::Bucket,
    )
    .unwrap();
    assert_same(&direct, &rows[0].result);
}
