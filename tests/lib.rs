//! Shared helpers for the cross-crate integration tests.

use uu_core::sample::SampleView;

/// Signed estimation error of `estimate` against `truth`.
pub fn signed_error(estimate: f64, truth: f64) -> f64 {
    estimate - truth
}

/// Relative absolute error of `estimate` against `truth`.
pub fn rel_error(estimate: f64, truth: f64) -> f64 {
    (estimate - truth).abs() / truth.abs()
}

/// The paper's toy-example sample before source s5 (Appendix F):
/// A (1000) ×1, B (2000) ×2, D (10 000) ×4.
pub fn toy_before() -> SampleView {
    SampleView::from_value_multiplicities([(1000.0, 1), (2000.0, 2), (10_000.0, 4)])
}

/// The toy-example sample after s5 = {A, E}: A ×2, B ×2, D ×4, E (300) ×1.
pub fn toy_after() -> SampleView {
    SampleView::from_value_multiplicities([(1000.0, 2), (2000.0, 2), (10_000.0, 4), (300.0, 1)])
}
